//! Tree-based lottery with partial ticket sums (Section 4.2).
//!
//! For large client counts the paper recommends "a tree of partial ticket
//! sums, with clients at the leaves", which locates a winner with `lg n`
//! additions and comparisons. This module implements that structure as an
//! implicit complete binary tree (a segment tree over leaf slots): draws
//! descend from the root comparing the winning value against the left
//! subtree's sum; updates recompute the path from the touched leaf upward,
//! so floating-point sums never drift.

use super::index::{HashIndex, SlotIndex};
use super::{TicketPool, Weight};

/// A partial-sum tree lottery pool.
///
/// # Examples
///
/// ```
/// use lottery_core::lottery::{tree::TreeLottery, TicketPool};
/// use lottery_core::rng::ParkMiller;
///
/// let mut pool = TreeLottery::new();
/// pool.insert("interactive", 75u64);
/// pool.insert("batch", 25u64);
/// let mut rng = ParkMiller::new(1);
/// let winner = pool.draw(&mut rng).unwrap();
/// assert!(["interactive", "batch"].contains(winner));
/// ```
#[derive(Debug, Clone)]
pub struct TreeLottery<T, W, I = HashIndex<T>> {
    /// Leaf slot -> (item, weight).
    items: Vec<(T, W)>,
    /// Item -> leaf slot (pluggable: hash map or dense arena table).
    index: I,
    /// 1-based implicit binary tree of `2 * capacity` sums.
    tree: Vec<W>,
    /// Number of leaf slots (a power of two).
    capacity: usize,
}

impl<T, W: Weight, I: SlotIndex<T>> Default for TreeLottery<T, W, I> {
    fn default() -> Self {
        Self::with_index(1)
    }
}

impl<T: Eq + std::hash::Hash + Clone, W: Weight> TreeLottery<T, W> {
    /// Creates an empty pool with the default hash-based index.
    pub fn new() -> Self {
        Self::with_capacity(1)
    }

    /// Creates an empty pool with room for `n` entries before regrowing.
    pub fn with_capacity(n: usize) -> Self {
        Self::with_index(n)
    }
}

impl<T, W: Weight, I: SlotIndex<T>> TreeLottery<T, W, I> {
    /// Creates an empty pool over a chosen reverse-index type, with room
    /// for `n` entries before regrowing (see [`super::index`]).
    pub fn with_index(n: usize) -> Self {
        let capacity = n.max(1).next_power_of_two();
        Self {
            items: Vec::new(),
            index: I::with_capacity(n),
            tree: vec![W::ZERO; 2 * capacity],
            capacity,
        }
    }

    /// The depth of the sum tree: the number of comparisons per draw.
    pub fn depth(&self) -> u32 {
        self.capacity.trailing_zeros()
    }

    /// Iterates entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, W)> {
        self.items.iter().map(|(t, w)| (t, *w))
    }

    /// Recomputes sums on the path from leaf `slot` to the root.
    fn update_path(&mut self, slot: usize) {
        let mut node = (self.capacity + slot) / 2;
        while node >= 1 {
            self.tree[node] = self.tree[2 * node].add(self.tree[2 * node + 1]);
            if node == 1 {
                break;
            }
            node /= 2;
        }
    }

    fn set_leaf(&mut self, slot: usize, weight: W) {
        self.tree[self.capacity + slot] = weight;
        self.update_path(slot);
    }

    fn grow(&mut self) {
        let new_capacity = self.capacity * 2;
        let mut tree = vec![W::ZERO; 2 * new_capacity];
        for (slot, (_, w)) in self.items.iter().enumerate() {
            tree[new_capacity + slot] = *w;
        }
        for node in (1..new_capacity).rev() {
            tree[node] = tree[2 * node].add(tree[2 * node + 1]);
        }
        self.capacity = new_capacity;
        self.tree = tree;
    }
}

impl<T, W: Weight, I: SlotIndex<T>> TicketPool<T, W> for TreeLottery<T, W, I> {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn total(&self) -> W {
        self.tree[1]
    }

    fn insert(&mut self, item: T, weight: W) {
        if let Some(slot) = self.index.get(&item) {
            self.items[slot].1 = weight;
            self.set_leaf(slot, weight);
            return;
        }
        if self.items.len() == self.capacity {
            self.grow();
        }
        let slot = self.items.len();
        self.index.set(&item, slot);
        self.items.push((item, weight));
        self.set_leaf(slot, weight);
    }

    fn remove(&mut self, item: &T) -> Option<W> {
        let slot = self.index.remove(item)?;
        let (_, weight) = self.items.swap_remove(slot);
        if slot < self.items.len() {
            // The former last entry now occupies `slot`.
            let moved_weight = self.items[slot].1;
            self.index.set(&self.items[slot].0, slot);
            self.set_leaf(slot, moved_weight);
        }
        // Clear the vacated last leaf.
        self.set_leaf(self.items.len(), W::ZERO);
        Some(weight)
    }

    fn set_weight(&mut self, item: &T, weight: W) -> bool {
        let Some(slot) = self.index.get(item) else {
            return false;
        };
        self.items[slot].1 = weight;
        self.set_leaf(slot, weight);
        true
    }

    fn select(&mut self, winner: W) -> Option<&T> {
        if self.total().is_zero() {
            return None;
        }
        let mut winner = winner;
        let mut node = 1usize;
        while node < self.capacity {
            let left = 2 * node;
            let left_sum = self.tree[left];
            if winner < left_sum {
                node = left;
            } else {
                winner = winner.sub(left_sum);
                node = left + 1;
            }
        }
        let mut slot = node - self.capacity;
        // Floating rounding can land the descent on a zero leaf at an
        // interval boundary; step back to the nearest positive entry.
        if slot >= self.items.len() || self.items[slot].1.is_zero() {
            slot = self.items[..slot.min(self.items.len())]
                .iter()
                .rposition(|(_, w)| !w.is_zero())
                .or_else(|| self.items.iter().position(|(_, w)| !w.is_zero()))?;
        }
        self.items.get(slot).map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::LotteryError;
    use crate::rng::ParkMiller;

    fn figure1_pool() -> TreeLottery<&'static str, u64> {
        let mut pool = TreeLottery::new();
        for (client, tickets) in [("c1", 10u64), ("c2", 2), ("c3", 5), ("c4", 1), ("c5", 2)] {
            pool.insert(client, tickets);
        }
        pool
    }

    /// The tree lottery must agree with Figure 1's list walk.
    #[test]
    fn figure1_example() {
        let mut pool = figure1_pool();
        assert_eq!(pool.total(), 20);
        assert_eq!(pool.select(15), Some(&"c3"));
    }

    #[test]
    fn agrees_with_list_on_every_winning_value() {
        use crate::lottery::list::ListLottery;
        let mut tree = figure1_pool();
        let mut list = ListLottery::without_move_to_front();
        for (client, tickets) in [("c1", 10u64), ("c2", 2), ("c3", 5), ("c4", 1), ("c5", 2)] {
            list.insert(client, tickets);
        }
        for w in 0..20 {
            assert_eq!(tree.select(w), list.select(w), "winning value {w}");
        }
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut pool = TreeLottery::with_capacity(2);
        for i in 0..40u64 {
            pool.insert(i, i + 1);
        }
        assert_eq!(pool.len(), 40);
        assert_eq!(pool.total(), (1..=40).sum::<u64>());
        assert_eq!(pool.select(0), Some(&0));
    }

    #[test]
    fn remove_swaps_last_into_slot() {
        let mut pool = figure1_pool();
        assert_eq!(pool.remove(&"c1"), Some(10));
        assert_eq!(pool.total(), 10);
        assert_eq!(pool.len(), 4);
        // c5 (the last entry) moved into slot 0; selection still works.
        assert_eq!(pool.select(0), Some(&"c5"));
        assert_eq!(pool.remove(&"c1"), None);
    }

    #[test]
    fn remove_last_entry() {
        let mut pool: TreeLottery<&str, u64> = TreeLottery::new();
        pool.insert("only", 5);
        assert_eq!(pool.remove(&"only"), Some(5));
        assert!(pool.is_empty());
        assert_eq!(pool.total(), 0);
    }

    #[test]
    fn set_weight_and_reinsert() {
        let mut pool = figure1_pool();
        assert!(pool.set_weight(&"c2", 8));
        assert_eq!(pool.total(), 26);
        pool.insert("c2", 1);
        assert_eq!(pool.total(), 19);
        assert_eq!(pool.len(), 5);
    }

    #[test]
    fn empty_draw_fails() {
        let mut pool: TreeLottery<u32, u64> = TreeLottery::new();
        let mut rng = ParkMiller::new(1);
        assert_eq!(pool.draw(&mut rng), Err(LotteryError::EmptyLottery));
    }

    #[test]
    fn zero_weight_entries_never_win() {
        let mut pool = TreeLottery::new();
        pool.insert("zero", 0u64);
        pool.insert("winner", 1u64);
        let mut rng = ParkMiller::new(9);
        for _ in 0..64 {
            assert_eq!(pool.draw(&mut rng), Ok(&"winner"));
        }
    }

    #[test]
    fn draws_converge_to_shares() {
        let mut pool = TreeLottery::new();
        pool.insert("a", 30u64);
        pool.insert("b", 10u64);
        let mut rng = ParkMiller::new(77);
        let mut wins_a = 0u32;
        let n = 40_000;
        for _ in 0..n {
            if *pool.draw(&mut rng).unwrap() == "a" {
                wins_a += 1;
            }
        }
        let share = f64::from(wins_a) / f64::from(n);
        assert!((share - 0.75).abs() < 0.01, "share {share}");
    }

    #[test]
    fn f64_weights_select_correctly() {
        let mut pool: TreeLottery<u32, f64> = TreeLottery::new();
        pool.insert(1, 400.0);
        pool.insert(2, 600.0);
        pool.insert(3, 2000.0);
        assert_eq!(pool.select(0.0), Some(&1));
        assert_eq!(pool.select(399.9), Some(&1));
        assert_eq!(pool.select(400.0), Some(&2));
        assert_eq!(pool.select(999.9), Some(&2));
        assert_eq!(pool.select(1000.0), Some(&3));
        assert_eq!(pool.select(2999.9), Some(&3));
    }

    #[test]
    fn depth_grows_logarithmically() {
        let mut pool: TreeLottery<u64, u64> = TreeLottery::with_capacity(1);
        for i in 0..1000u64 {
            pool.insert(i, 1);
        }
        assert_eq!(pool.depth(), 10, "1024 leaves -> depth 10");
    }

    #[test]
    fn many_inserts_removes_stay_consistent() {
        let mut pool: TreeLottery<u64, u64> = TreeLottery::new();
        let mut rng = ParkMiller::new(3);
        use crate::rng::SchedRng;
        let mut expected_total = 0u64;
        let mut live: Vec<(u64, u64)> = Vec::new();
        for i in 0..500u64 {
            let w = rng.below(100) + 1;
            pool.insert(i, w);
            live.push((i, w));
            expected_total += w;
            if i % 3 == 0 && !live.is_empty() {
                let victim = (rng.below(live.len() as u64)) as usize;
                let (id, w) = live.swap_remove(victim);
                assert_eq!(pool.remove(&id), Some(w));
                expected_total -= w;
            }
            assert_eq!(pool.total(), expected_total, "after step {i}");
            assert_eq!(pool.len(), live.len());
        }
    }
}
