//! Clients: the schedulable entities that hold tickets and compete in
//! lotteries.
//!
//! In the paper's Mach prototype a client is a kernel thread; in this
//! library a client is anything that competes for a resource — a simulated
//! thread ([`lottery-sim`]), a waiter on a lottery mutex, or a virtual
//! circuit. A client's resource rights are the tickets funding it, valued in
//! base units through the currency graph, times any compensation factor
//! (Section 4.5).
//!
//! [`lottery-sim`]: https://docs.rs/lottery-sim

use crate::arena::Handle;
use crate::ticket::TicketId;

/// Handle naming a [`Client`] in a ledger.
pub type ClientId = Handle<Client>;

/// A schedulable client.
#[derive(Debug, Clone, PartialEq)]
pub struct Client {
    name: String,
    funding: Vec<TicketId>,
    active: bool,
    compensation: f64,
}

impl Client {
    /// Creates an inactive client with no funding.
    pub(crate) fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            funding: Vec::new(),
            active: false,
            compensation: 1.0,
        }
    }

    /// The client's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tickets currently funding this client.
    pub fn funding(&self) -> &[TicketId] {
        &self.funding
    }

    /// Whether the client is actively competing (e.g. on the run queue).
    ///
    /// Activity drives ticket activation: a blocked client's tickets are
    /// deactivated and reactivated when it rejoins the run queue
    /// (Section 4.4).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The client's compensation factor (≥ 1).
    ///
    /// A client that consumed only fraction `f` of its last quantum holds a
    /// compensation ticket inflating its value by `1/f` until it starts its
    /// next quantum (Sections 3.4 and 4.5). A factor of exactly `1.0` means
    /// no compensation is in effect.
    pub fn compensation(&self) -> f64 {
        self.compensation
    }

    pub(crate) fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    pub(crate) fn set_compensation(&mut self, factor: f64) {
        debug_assert!(factor >= 1.0 && factor.is_finite());
        self.compensation = factor;
    }

    pub(crate) fn add_funding(&mut self, ticket: TicketId) {
        self.funding.push(ticket);
    }

    pub(crate) fn remove_funding(&mut self, ticket: TicketId) {
        if let Some(pos) = self.funding.iter().position(|&t| t == ticket) {
            self.funding.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_client_defaults() {
        let c = Client::new("worker");
        assert_eq!(c.name(), "worker");
        assert!(c.funding().is_empty());
        assert!(!c.is_active());
        assert_eq!(c.compensation(), 1.0);
    }

    #[test]
    fn compensation_round_trip() {
        let mut c = Client::new("io-bound");
        c.set_compensation(5.0);
        assert_eq!(c.compensation(), 5.0);
        c.set_compensation(1.0);
        assert_eq!(c.compensation(), 1.0);
    }
}
