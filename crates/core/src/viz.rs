//! Graphviz export of the currency graph.
//!
//! Figures 2 and 3 of the paper are drawings of the ticket/currency
//! object graph; [`to_dot`] renders any ledger in the same shape for
//! `dot -Tsvg`. Currencies are boxes (with active/total amounts and their
//! base value), clients are ellipses (with their value), and each ticket
//! is an edge from its denomination currency to its funding target,
//! labelled with its amount; inactive tickets are dashed.

use crate::ledger::{Ledger, Valuator};
use crate::ticket::FundingTarget;

/// Renders the ledger as a Graphviz `digraph`.
pub fn to_dot(ledger: &Ledger) -> String {
    let mut v = Valuator::new(ledger);
    let mut out = String::from("digraph currencies {\n  rankdir=TB;\n");

    for (id, cur) in ledger.currencies() {
        let value = v.currency_value(id).unwrap_or(0.0);
        out.push_str(&format!(
            "  cur{} [shape=box, label=\"{}\\n{} active / {} issued\\nvalue {:.0}\"];\n",
            id.index(),
            escape(cur.name()),
            cur.active_amount(),
            cur.total_amount(),
            value,
        ));
    }
    for (id, client) in ledger.clients() {
        let value = v.client_value(id).unwrap_or(0.0);
        let style = if client.is_active() {
            "solid"
        } else {
            "dashed"
        };
        out.push_str(&format!(
            "  cli{} [shape=ellipse, style={}, label=\"{}\\nvalue {:.0}\"];\n",
            id.index(),
            style,
            escape(client.name()),
            value,
        ));
    }
    for (id, ticket) in ledger.tickets() {
        let style = if ticket.is_active() {
            "solid"
        } else {
            "dashed"
        };
        let target = match ticket.target() {
            FundingTarget::Currency(c) => format!("cur{}", c.index()),
            FundingTarget::Client(c) => format!("cli{}", c.index()),
            FundingTarget::Unfunded => {
                // Represent unfunded tickets as floating points.
                out.push_str(&format!("  tkt{} [shape=point, label=\"\"];\n", id.index()));
                format!("tkt{}", id.index())
            }
        };
        out.push_str(&format!(
            "  cur{} -> {} [style={}, label=\"{}\"];\n",
            ticket.currency().index(),
            target,
            style,
            ticket.amount(),
        ));
    }
    out.push_str("}\n");
    out
}

/// Escapes a name for a double-quoted dot label.
fn escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_figure3_shape() {
        let mut l = Ledger::new();
        let alice = l.create_currency("alice").unwrap();
        let t = l.issue_root(l.base(), 1000).unwrap();
        l.fund_currency(t, alice).unwrap();
        let cl = l.create_client("thread1");
        let ft = l.issue_root(alice, 100).unwrap();
        l.fund_client(ft, cl).unwrap();
        l.activate_client(cl).unwrap();

        let dot = to_dot(&l);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("alice"), "{dot}");
        assert!(dot.contains("thread1"), "{dot}");
        assert!(dot.contains("label=\"1000\""), "backing edge: {dot}");
        assert!(dot.contains("label=\"100\""), "funding edge: {dot}");
        assert!(dot.contains("value 1000"), "{dot}");
        assert!(dot.ends_with("}\n"));
        // Balanced braces for valid dot syntax.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn inactive_objects_are_dashed() {
        let mut l = Ledger::new();
        let cl = l.create_client("sleeper");
        let t = l.issue_root(l.base(), 5).unwrap();
        l.fund_client(t, cl).unwrap();
        let dot = to_dot(&l);
        assert!(dot.contains("style=dashed"), "{dot}");
    }

    #[test]
    fn unfunded_tickets_render_as_points() {
        let mut l = Ledger::new();
        let _ = l.issue_root(l.base(), 5).unwrap();
        let dot = to_dot(&l);
        assert!(dot.contains("shape=point"), "{dot}");
    }

    #[test]
    fn names_are_escaped() {
        let mut l = Ledger::new();
        let _ = l.create_currency("evil\"name").unwrap();
        let dot = to_dot(&l);
        assert!(dot.contains("evil\\\"name"), "{dot}");
    }
}
