//! Ticket transfers (Sections 3.1 and 4.6).
//!
//! A client that blocks on a dependency — typically a synchronous RPC —
//! temporarily transfers its tickets to the server computing on its behalf,
//! solving priority inversion the way priority inheritance does. The Mach
//! prototype implements a transfer by creating a new ticket denominated in
//! the client's currency and using it to fund the server (the server thread
//! directly when one is waiting, or the server's currency otherwise); the
//! reply destroys the transfer ticket.
//!
//! [`Transfer`] records one outstanding loan so it can be reliably unwound,
//! and [`split`] divides a client's worth across several servers when it
//! waits on more than one (Section 3.1: "Clients also have the ability to
//! divide ticket transfers across multiple servers").

use crate::client::ClientId;
use crate::currency::CurrencyId;
use crate::errors::{LotteryError, Result};
use crate::ledger::Ledger;
use crate::ticket::TicketId;

/// Where a transfer sends the lent rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferTarget {
    /// Fund a specific server thread (the waiting-receiver fast path of
    /// Section 4.6).
    Client(ClientId),
    /// Fund the server task's currency, accelerating all of its threads
    /// (the paper suggests this for servers with fewer threads than
    /// incoming messages).
    Currency(CurrencyId),
}

/// An outstanding ticket transfer.
///
/// Dropping a `Transfer` without calling [`Transfer::repay`] leaks the
/// transfer ticket into the ledger (it keeps funding the target); the
/// embedding system (e.g. `lottery-sim`'s RPC layer) always repays on
/// reply.
#[derive(Debug)]
#[must_use = "a transfer must be repaid when the dependency completes"]
pub struct Transfer {
    ticket: TicketId,
    amount: u64,
    denomination: CurrencyId,
    target: TransferTarget,
}

impl Transfer {
    /// The transfer ticket lent to the target.
    pub fn ticket(&self) -> TicketId {
        self.ticket
    }

    /// The lent amount, in units of the denomination currency.
    pub fn amount(&self) -> u64 {
        self.amount
    }

    /// The currency the transfer ticket is denominated in.
    pub fn denomination(&self) -> CurrencyId {
        self.denomination
    }

    /// Who received the loan.
    pub fn target(&self) -> TransferTarget {
        self.target
    }

    /// Ends the transfer: destroys the transfer ticket.
    ///
    /// Mirrors Section 4.6: "During a reply, the transfer ticket is simply
    /// destroyed."
    pub fn repay(self, ledger: &mut Ledger) -> Result<()> {
        ledger.destroy_ticket(self.ticket)
    }
}

/// Lends `amount` units of `denomination` to `target`.
///
/// The caller names the denomination explicitly (normally the blocking
/// client's task currency) so a transfer has the same worth the blocked
/// client had. The new ticket is issued with root authority: transfers are
/// a kernel mechanism, not client-requested inflation.
pub fn lend(
    ledger: &mut Ledger,
    denomination: CurrencyId,
    amount: u64,
    target: TransferTarget,
) -> Result<Transfer> {
    let ticket = ledger.issue_root(denomination, amount)?;
    let result = match target {
        TransferTarget::Client(c) => ledger.fund_client(ticket, c),
        TransferTarget::Currency(c) => ledger.fund_currency(ticket, c),
    };
    if let Err(e) = result {
        // Roll the issue back so failed transfers leave no residue.
        let _ = ledger.destroy_ticket(ticket);
        return Err(e);
    }
    Ok(Transfer {
        ticket,
        amount,
        denomination,
        target,
    })
}

/// Divides `amount` units of `denomination` evenly across several targets.
///
/// The first `amount % targets.len()` transfers receive one extra unit so
/// the full amount is always lent. Fails with
/// [`LotteryError::ZeroAmount`] when there are more targets than units.
pub fn split(
    ledger: &mut Ledger,
    denomination: CurrencyId,
    amount: u64,
    targets: &[TransferTarget],
) -> Result<Vec<Transfer>> {
    if targets.is_empty() || amount < targets.len() as u64 {
        return Err(LotteryError::ZeroAmount);
    }
    let n = targets.len() as u64;
    let share = amount / n;
    let remainder = amount % n;
    let mut transfers = Vec::with_capacity(targets.len());
    for (i, &target) in targets.iter().enumerate() {
        let extra = u64::from((i as u64) < remainder);
        match lend(ledger, denomination, share + extra, target) {
            Ok(t) => transfers.push(t),
            Err(e) => {
                // Unwind the transfers made so far.
                for t in transfers {
                    let _ = t.repay(ledger);
                }
                return Err(e);
            }
        }
    }
    Ok(transfers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Valuator;

    /// A client worth 300 base units blocks on a server worth 100; during
    /// the call the server competes with the combined worth, and repayment
    /// restores the original split.
    fn setup() -> (Ledger, ClientId, ClientId, CurrencyId) {
        let mut l = Ledger::new();
        let client_cur = l.create_currency("client-task").unwrap();
        let back = l.issue_root(l.base(), 300).unwrap();
        l.fund_currency(back, client_cur).unwrap();

        let client = l.create_client("client");
        let tc = l.issue_root(client_cur, 100).unwrap();
        l.fund_client(tc, client).unwrap();

        let server = l.create_client("server");
        let ts = l.issue_root(l.base(), 100).unwrap();
        l.fund_client(ts, server).unwrap();
        l.activate_client(server).unwrap();
        (l, client, server, client_cur)
    }

    #[test]
    fn rpc_transfer_round_trip() {
        let (mut l, client, server, client_cur) = setup();
        l.activate_client(client).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(client).unwrap(), 300.0);
        assert_eq!(v.client_value(server).unwrap(), 100.0);

        // The client blocks: deactivate, then lend its worth to the server.
        l.deactivate_client(client).unwrap();
        let transfer = lend(&mut l, client_cur, 100, TransferTarget::Client(server)).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(client).unwrap(), 0.0);
        assert_eq!(v.client_value(server).unwrap(), 400.0);

        // Reply: destroy the transfer ticket, wake the client.
        transfer.repay(&mut l).unwrap();
        l.activate_client(client).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(client).unwrap(), 300.0);
        assert_eq!(v.client_value(server).unwrap(), 100.0);
    }

    #[test]
    fn transfer_to_currency_accelerates_all_threads() {
        let (mut l, _client, _server, client_cur) = setup();
        let server_cur = l.create_currency("server-task").unwrap();
        let sback = l.issue_root(l.base(), 100).unwrap();
        l.fund_currency(sback, server_cur).unwrap();
        let w1 = l.create_client("worker1");
        let w2 = l.create_client("worker2");
        let t1 = l.issue_root(server_cur, 1).unwrap();
        let t2 = l.issue_root(server_cur, 1).unwrap();
        l.fund_client(t1, w1).unwrap();
        l.fund_client(t2, w2).unwrap();
        l.activate_client(w1).unwrap();
        l.activate_client(w2).unwrap();

        let transfer = lend(
            &mut l,
            client_cur,
            100,
            TransferTarget::Currency(server_cur),
        )
        .unwrap();
        let mut v = Valuator::new(&l);
        // Server currency: 100 base + 300 via the client currency ticket
        // (the transfer ticket is the only active claim on client-task).
        assert_eq!(v.currency_value(server_cur).unwrap(), 400.0);
        assert_eq!(v.client_value(w1).unwrap(), 200.0);
        assert_eq!(v.client_value(w2).unwrap(), 200.0);

        transfer.repay(&mut l).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(w1).unwrap(), 50.0);
    }

    #[test]
    fn split_divides_evenly_with_remainder() {
        let (mut l, _client, server, client_cur) = setup();
        let other = l.create_client("other-server");
        let t = l.issue_root(l.base(), 1).unwrap();
        l.fund_client(t, other).unwrap();
        l.activate_client(other).unwrap();

        let transfers = split(
            &mut l,
            client_cur,
            101,
            &[
                TransferTarget::Client(server),
                TransferTarget::Client(other),
            ],
        )
        .unwrap();
        assert_eq!(transfers.len(), 2);
        assert_eq!(transfers[0].amount(), 51);
        assert_eq!(transfers[1].amount(), 50);
        let total: u64 = transfers.iter().map(Transfer::amount).sum();
        assert_eq!(total, 101);
        for t in transfers {
            t.repay(&mut l).unwrap();
        }
    }

    #[test]
    fn split_rejects_more_targets_than_units() {
        let (mut l, _client, server, client_cur) = setup();
        let err = split(
            &mut l,
            client_cur,
            1,
            &[
                TransferTarget::Client(server),
                TransferTarget::Client(server),
            ],
        );
        assert_eq!(err.err(), Some(LotteryError::ZeroAmount));
    }

    #[test]
    fn failed_lend_leaves_no_residue() {
        let (mut l, _client, _server, client_cur) = setup();
        let bogus_client = {
            let c = l.create_client("temp");
            l.destroy_client(c).unwrap();
            c
        };
        let tickets_before = l.tickets().count();
        let r = lend(&mut l, client_cur, 10, TransferTarget::Client(bogus_client));
        assert!(r.is_err());
        assert_eq!(l.tickets().count(), tickets_before);
    }
}
