//! Ticket currencies: local units of resource rights (Section 3.3).
//!
//! A currency names resource rights within a trust boundary. It is *backed*
//! (funded) by tickets denominated in more primitive currencies, and it
//! *issues* tickets denominated in itself. Inflation inside a currency is
//! locally contained: minting more tickets in currency `c` dilutes only
//! tickets denominated in `c`, never the backing currencies.

use crate::arena::Handle;
use crate::ticket::TicketId;

/// Handle naming a [`Currency`] in a ledger.
pub type CurrencyId = Handle<Currency>;

/// A principal identity used for currency issue permissions.
///
/// The paper proposes access control lists on currencies so that only
/// designated principals may inflate them (Section 3.3). Principals here are
/// opaque integers assigned by the embedding system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Principal(pub u32);

impl Principal {
    /// The distinguished root principal, permitted everywhere.
    pub const ROOT: Principal = Principal(0);
}

/// Who may issue (mint) tickets denominated in a currency.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum IssuePolicy {
    /// Any principal may issue tickets: the currency's holders mutually
    /// trust each other (ticket inflation per Section 3.2).
    #[default]
    Anyone,
    /// Only the listed principals (plus [`Principal::ROOT`]) may issue.
    Restricted(Vec<Principal>),
}

impl IssuePolicy {
    /// Whether `principal` may issue tickets under this policy.
    pub fn permits(&self, principal: Principal) -> bool {
        match self {
            Self::Anyone => true,
            Self::Restricted(list) => principal == Principal::ROOT || list.contains(&principal),
        }
    }
}

/// A ticket currency.
///
/// Mirrors the kernel object of Figure 2: a name, a list of backing tickets,
/// a list of issued tickets, and an *active amount* — the sum of the amounts
/// of issued tickets that are currently active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Currency {
    name: String,
    issued: Vec<TicketId>,
    backing: Vec<TicketId>,
    active_amount: u64,
    total_amount: u64,
    policy: IssuePolicy,
}

impl Currency {
    /// Creates an empty currency named `name` with issue policy `policy`.
    pub(crate) fn new(name: impl Into<String>, policy: IssuePolicy) -> Self {
        Self {
            name: name.into(),
            issued: Vec::new(),
            backing: Vec::new(),
            active_amount: 0,
            total_amount: 0,
            policy,
        }
    }

    /// The currency's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tickets denominated in this currency.
    pub fn issued(&self) -> &[TicketId] {
        &self.issued
    }

    /// Tickets that fund (back) this currency.
    pub fn backing(&self) -> &[TicketId] {
        &self.backing
    }

    /// Sum of the amounts of *active* issued tickets.
    ///
    /// This is the divisor in ticket valuation: a ticket of amount `a` is
    /// worth `a / active_amount` of the currency's value (Section 4.4).
    pub fn active_amount(&self) -> u64 {
        self.active_amount
    }

    /// Sum of the amounts of all issued tickets, active or not.
    pub fn total_amount(&self) -> u64 {
        self.total_amount
    }

    /// Whether any issued ticket is active.
    pub fn is_active(&self) -> bool {
        self.active_amount > 0
    }

    /// The currency's issue policy.
    pub fn policy(&self) -> &IssuePolicy {
        &self.policy
    }

    pub(crate) fn set_policy(&mut self, policy: IssuePolicy) {
        self.policy = policy;
    }

    pub(crate) fn add_issued(&mut self, ticket: TicketId, amount: u64) {
        self.issued.push(ticket);
        self.total_amount += amount;
    }

    pub(crate) fn remove_issued(&mut self, ticket: TicketId, amount: u64) {
        retain_one(&mut self.issued, ticket);
        self.total_amount -= amount;
    }

    pub(crate) fn add_backing(&mut self, ticket: TicketId) {
        self.backing.push(ticket);
    }

    pub(crate) fn remove_backing(&mut self, ticket: TicketId) {
        retain_one(&mut self.backing, ticket);
    }

    /// Adds `amount` to the active amount, reporting a zero-crossing.
    ///
    /// Returns `true` when the currency transitioned inactive → active, in
    /// which case the caller must activate the backing tickets (Section 4.4).
    pub(crate) fn activate_amount(&mut self, amount: u64) -> bool {
        let was_zero = self.active_amount == 0;
        self.active_amount += amount;
        was_zero && amount > 0
    }

    /// Subtracts `amount` from the active amount, reporting a zero-crossing.
    ///
    /// Returns `true` when the currency transitioned active → inactive.
    pub(crate) fn deactivate_amount(&mut self, amount: u64) -> bool {
        debug_assert!(self.active_amount >= amount);
        self.active_amount -= amount;
        amount > 0 && self.active_amount == 0
    }

    pub(crate) fn adjust_amount(&mut self, old: u64, new: u64, active: bool) {
        self.total_amount = self.total_amount - old + new;
        if active {
            self.active_amount = self.active_amount - old + new;
        }
    }
}

/// Removes the first occurrence of `id` from `list`, preserving order.
fn retain_one(list: &mut Vec<TicketId>, id: TicketId) {
    if let Some(pos) = list.iter().position(|&t| t == id) {
        list.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use crate::ticket::Ticket;

    fn tid(n: usize) -> TicketId {
        let mut arena: Arena<Ticket> = Arena::new();
        let mut last = None;
        for _ in 0..=n {
            let c: Arena<Currency> = Arena::new();
            let _ = c;
            // Insert placeholder tickets to obtain distinct handles.
            let mut ca: Arena<Currency> = Arena::new();
            let cur = ca.insert(Currency::new("x", IssuePolicy::Anyone));
            last = Some(arena.insert(Ticket::new(1, cur)));
        }
        last.unwrap()
    }

    #[test]
    fn issue_policy_anyone_permits_all() {
        let p = IssuePolicy::Anyone;
        assert!(p.permits(Principal(42)));
        assert!(p.permits(Principal::ROOT));
    }

    #[test]
    fn issue_policy_restricted() {
        let p = IssuePolicy::Restricted(vec![Principal(7)]);
        assert!(p.permits(Principal(7)));
        assert!(p.permits(Principal::ROOT));
        assert!(!p.permits(Principal(8)));
    }

    #[test]
    fn active_amount_zero_crossings() {
        let mut c = Currency::new("test", IssuePolicy::Anyone);
        assert!(c.activate_amount(10), "0 -> 10 crosses zero");
        assert!(!c.activate_amount(5), "10 -> 15 does not");
        assert!(!c.deactivate_amount(5), "15 -> 10 does not");
        assert!(c.deactivate_amount(10), "10 -> 0 crosses zero");
        assert!(!c.is_active());
    }

    #[test]
    fn activate_zero_amount_is_not_a_crossing() {
        let mut c = Currency::new("test", IssuePolicy::Anyone);
        assert!(!c.activate_amount(0));
        assert!(!c.deactivate_amount(0));
    }

    #[test]
    fn issued_bookkeeping() {
        let mut c = Currency::new("test", IssuePolicy::Anyone);
        let t = tid(0);
        c.add_issued(t, 100);
        assert_eq!(c.total_amount(), 100);
        assert_eq!(c.issued(), &[t]);
        c.remove_issued(t, 100);
        assert_eq!(c.total_amount(), 0);
        assert!(c.issued().is_empty());
    }

    #[test]
    fn adjust_amount_updates_totals() {
        let mut c = Currency::new("test", IssuePolicy::Anyone);
        let t = tid(1);
        c.add_issued(t, 100);
        c.activate_amount(100);
        c.adjust_amount(100, 250, true);
        assert_eq!(c.total_amount(), 250);
        assert_eq!(c.active_amount(), 250);
        c.adjust_amount(250, 50, false);
        assert_eq!(c.total_amount(), 50);
        assert_eq!(c.active_amount(), 250, "inactive adjust leaves active sum");
    }
}
