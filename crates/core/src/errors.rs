//! Error types for the lottery-scheduling core.
//!
//! Every mutating operation on a [`crate::ledger::Ledger`] is fallible and
//! reports failures through [`LotteryError`] rather than panicking, per the
//! kernel Rust guidance that fallible approaches are preferred over panics.

use core::fmt;

use crate::arena::RawHandle;

/// Errors produced by ticket, currency, and lottery operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LotteryError {
    /// A handle referred to an object that no longer exists (or never did).
    StaleHandle {
        /// Which kind of object the handle named.
        kind: ObjectKind,
        /// The raw handle value, for diagnostics.
        handle: RawHandle,
    },
    /// Funding the currency would create a cycle in the currency graph.
    ///
    /// The paper requires currency relationships to form an *acyclic* graph
    /// (Section 3.3); a cycle would make ticket valuation ill-defined.
    CurrencyCycle,
    /// The principal is not permitted to issue tickets in this currency.
    ///
    /// Currencies carry an issue permission list so that ticket inflation is
    /// contained within a trust boundary (Sections 3.2 and 3.3).
    PermissionDenied,
    /// A ticket amount of zero was supplied where a positive amount is
    /// required.
    ZeroAmount,
    /// The currency still has issued or backing tickets and cannot be
    /// destroyed.
    CurrencyInUse,
    /// The client still holds tickets and cannot be destroyed.
    ClientInUse,
    /// The base currency cannot be destroyed or re-funded.
    BaseCurrencyImmutable,
    /// A lottery was held over an empty or zero-valued pool.
    EmptyLottery,
    /// An inverse lottery needs at least two clients to pick a loser.
    InverseLotteryTooSmall,
    /// A transfer referred to a ticket that is not currently lent out.
    NotTransferred,
    /// Arithmetic on ticket amounts overflowed.
    AmountOverflow,
}

/// The kinds of ledger object a handle may refer to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A lottery ticket.
    Ticket,
    /// A ticket currency.
    Currency,
    /// A schedulable client (thread).
    Client,
}

impl fmt::Display for LotteryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::StaleHandle { kind, handle } => {
                write!(f, "stale {kind:?} handle {handle:?}")
            }
            Self::CurrencyCycle => write!(f, "funding would create a currency cycle"),
            Self::PermissionDenied => write!(f, "principal may not issue tickets in this currency"),
            Self::ZeroAmount => write!(f, "ticket amount must be positive"),
            Self::CurrencyInUse => write!(f, "currency still has issued or backing tickets"),
            Self::ClientInUse => write!(f, "client still holds tickets"),
            Self::BaseCurrencyImmutable => write!(f, "the base currency cannot be modified"),
            Self::EmptyLottery => write!(f, "lottery held over an empty or zero-valued pool"),
            Self::InverseLotteryTooSmall => {
                write!(f, "inverse lottery requires at least two clients")
            }
            Self::NotTransferred => write!(f, "ticket is not currently transferred"),
            Self::AmountOverflow => write!(f, "ticket amount arithmetic overflowed"),
        }
    }
}

impl std::error::Error for LotteryError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = core::result::Result<T, LotteryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LotteryError::CurrencyCycle;
        assert!(e.to_string().contains("cycle"));
        let e = LotteryError::StaleHandle {
            kind: ObjectKind::Ticket,
            handle: RawHandle::new(3, 7),
        };
        let s = e.to_string();
        assert!(s.contains("Ticket"), "{s}");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LotteryError::EmptyLottery);
    }
}
