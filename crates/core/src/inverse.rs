//! Inverse lotteries for space-shared resources (Section 6.2).
//!
//! Time-shared resources grant the *winner* of a lottery a unit of the
//! resource; finely divisible space-shared resources such as memory instead
//! need to pick a *loser* that relinquishes a unit it holds. An inverse
//! lottery chooses client `i` with probability
//!
//! ```text
//! P[i] = (1 / (n - 1)) * (1 - t_i / T)
//! ```
//!
//! where `t_i` is the client's tickets, `T` the total, and `n` the number of
//! clients; the `1/(n-1)` factor normalizes the probabilities to sum to
//! one. The more tickets a client holds, the less likely it is to have a
//! unit revoked.

use crate::errors::{LotteryError, Result};
use crate::rng::SchedRng;

/// Picks the index of the losing entry by inverse lottery.
///
/// Entries are `(id, tickets)` pairs. Implemented exactly with integer
/// arithmetic: selecting proportionally to `1 - t_i/T` is the same as a
/// forward lottery over the complementary weights `T - t_i`, whose total is
/// `(n - 1) * T`.
///
/// # Errors
///
/// * [`LotteryError::InverseLotteryTooSmall`] with fewer than two entries —
///   a loser must be distinguishable from the rest.
/// * [`LotteryError::EmptyLottery`] when every entry holds zero tickets
///   and the total is zero; with `T = 0` the distribution degenerates to
///   uniform, which callers should request explicitly.
pub fn draw_loser<T, R: SchedRng + ?Sized>(entries: &[(T, u64)], rng: &mut R) -> Result<usize> {
    if entries.len() < 2 {
        return Err(LotteryError::InverseLotteryTooSmall);
    }
    let total: u64 = entries
        .iter()
        .try_fold(0u64, |acc, (_, t)| acc.checked_add(*t))
        .ok_or(LotteryError::AmountOverflow)?;
    if total == 0 {
        return Err(LotteryError::EmptyLottery);
    }
    let n = entries.len() as u64;
    let complement_total = (n - 1)
        .checked_mul(total)
        .ok_or(LotteryError::AmountOverflow)?;
    let winner = rng.below(complement_total);
    let mut sum = 0u64;
    for (i, (_, t)) in entries.iter().enumerate() {
        sum += total - t;
        if winner < sum {
            return Ok(i);
        }
    }
    // Unreachable: the complementary weights sum to exactly
    // `complement_total` and `winner < complement_total`.
    unreachable!("inverse lottery ran past its total")
}

/// Picks a loser uniformly — the degenerate case where no entry holds
/// tickets.
pub fn draw_loser_uniform<T, R: SchedRng + ?Sized>(
    entries: &[(T, u64)],
    rng: &mut R,
) -> Result<usize> {
    if entries.len() < 2 {
        return Err(LotteryError::InverseLotteryTooSmall);
    }
    Ok(rng.below(entries.len() as u64) as usize)
}

/// The exact loss probability of entry `i`, for verification and tests.
pub fn loss_probability(entries: &[u64], i: usize) -> f64 {
    let n = entries.len() as f64;
    let total: u64 = entries.iter().sum();
    if total == 0 {
        return 1.0 / n;
    }
    (1.0 - entries[i] as f64 / total as f64) / (n - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::ParkMiller;

    #[test]
    fn single_entry_rejected() {
        let mut rng = ParkMiller::new(1);
        let entries = [("only", 5u64)];
        assert_eq!(
            draw_loser(&entries, &mut rng),
            Err(LotteryError::InverseLotteryTooSmall)
        );
    }

    #[test]
    fn zero_total_rejected() {
        let mut rng = ParkMiller::new(1);
        let entries = [("a", 0u64), ("b", 0u64)];
        assert_eq!(
            draw_loser(&entries, &mut rng),
            Err(LotteryError::EmptyLottery)
        );
        // The uniform fallback still works.
        let i = draw_loser_uniform(&entries, &mut rng).unwrap();
        assert!(i < 2);
    }

    #[test]
    fn holder_of_all_tickets_never_loses_two_client_case() {
        // With two clients holding (T, 0), the complement weights are
        // (0, T): the ticketless client always loses.
        let mut rng = ParkMiller::new(7);
        let entries = [("rich", 10u64), ("poor", 0u64)];
        for _ in 0..100 {
            assert_eq!(draw_loser(&entries, &mut rng).unwrap(), 1);
        }
    }

    #[test]
    fn empirical_distribution_matches_formula() {
        // Section 6.2's example: n = 3 clients, ticket shares such that the
        // loss probabilities are (1 - t_i/T)/2.
        let entries = [("a", 5u64), ("b", 3), ("c", 2)];
        let probs: Vec<f64> = (0..3).map(|i| loss_probability(&[5, 3, 2], i)).collect();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((probs[0] - 0.25).abs() < 1e-12);
        assert!((probs[1] - 0.35).abs() < 1e-12);
        assert!((probs[2] - 0.40).abs() < 1e-12);

        let mut rng = ParkMiller::new(123);
        let mut losses = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            losses[draw_loser(&entries, &mut rng).unwrap()] += 1;
        }
        for i in 0..3 {
            let observed = f64::from(losses[i]) / f64::from(n);
            assert!(
                (observed - probs[i]).abs() < 0.01,
                "client {i}: observed {observed}, expected {}",
                probs[i]
            );
        }
    }

    #[test]
    fn probabilities_sum_to_unity_for_many_sizes() {
        for n in 2..20usize {
            let tickets: Vec<u64> = (1..=n as u64).collect();
            let sum: f64 = (0..n).map(|i| loss_probability(&tickets, i)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "n={n}: {sum}");
        }
    }
}
