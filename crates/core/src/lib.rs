//! # lottery-core
//!
//! A from-scratch Rust implementation of the mechanisms in Waldspurger &
//! Weihl, *Lottery Scheduling: Flexible Proportional-Share Resource
//! Management* (OSDI '94).
//!
//! Resource rights are represented by **lottery tickets** denominated in
//! **currencies** that form an acyclic funding graph rooted at a conserved
//! base currency. Each allocation decision is a **lottery**: a uniformly
//! random winning value selects a client with probability proportional to
//! the base-unit value of the tickets funding it.
//!
//! ## Layout
//!
//! * [`ledger`] — the kernel object graph: create/destroy tickets and
//!   currencies, fund/unfund, activation propagation, valuation.
//! * [`exact`] — the same valuation in reduced `u128` rationals, for
//!   bit-for-bit conservation checks.
//! * [`lottery`] — list-based (with move-to-front) and tree-based
//!   (partial-sum, `O(log n)`) winner selection.
//! * [`rng`] — the paper's Park–Miller generator, bit-exact.
//! * [`compensation`] — compensation tickets for partially used quanta.
//! * [`transfer`] — ticket transfers for RPC-style dependencies.
//! * [`inverse`] — inverse lotteries for revoking space-shared resources.
//!
//! ## Quick start
//!
//! ```
//! use lottery_core::prelude::*;
//!
//! let mut ledger = Ledger::new();
//! let base = ledger.base();
//!
//! // Two clients with a 3 : 1 ticket allocation.
//! let a = ledger.create_client("a");
//! let b = ledger.create_client("b");
//! let ta = ledger.issue_root(base, 300).unwrap();
//! let tb = ledger.issue_root(base, 100).unwrap();
//! ledger.fund_client(ta, a).unwrap();
//! ledger.fund_client(tb, b).unwrap();
//! ledger.activate_client(a).unwrap();
//! ledger.activate_client(b).unwrap();
//!
//! // Hold lotteries; a wins about three times as often as b.
//! let mut valuator = Valuator::new(&ledger);
//! let mut pool: ListLottery<&str, f64> = ListLottery::new();
//! pool.insert("a", valuator.client_value(a).unwrap());
//! pool.insert("b", valuator.client_value(b).unwrap());
//! let mut rng = ParkMiller::new(42);
//! let mut wins = 0;
//! for _ in 0..10_000 {
//!     if *pool.draw(&mut rng).unwrap() == "a" {
//!         wins += 1;
//!     }
//! }
//! assert!((wins as f64 / 10_000.0 - 0.75).abs() < 0.02);
//! ```

pub mod arena;
pub mod client;
pub mod compensation;
pub mod currency;
pub mod errors;
pub mod exact;
pub mod inverse;
pub mod ledger;
pub mod lottery;
pub mod mutex;
pub mod rng;
pub mod ticket;
pub mod transfer;
pub mod viz;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::client::ClientId;
    pub use crate::currency::{CurrencyId, IssuePolicy, Principal};
    pub use crate::errors::{LotteryError, Result};
    pub use crate::ledger::{Ledger, Valuator};
    pub use crate::lottery::alias::AliasLottery;
    pub use crate::lottery::index::{DenseIndex, HashIndex, SlotIndex, SlotKey};
    pub use crate::lottery::list::ListLottery;
    pub use crate::lottery::tree::TreeLottery;
    pub use crate::lottery::{TicketPool, Weight};
    pub use crate::rng::{ParkMiller, SchedRng, SplitMix64};
    pub use crate::ticket::{FundingTarget, TicketId};
    pub use crate::transfer::{lend, split, Transfer, TransferTarget};
}
