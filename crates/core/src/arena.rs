//! Generational arenas for ledger objects.
//!
//! The ticket/currency graph of Section 3.3 is an arbitrary acyclic graph
//! with shared ownership in both directions (currencies list their issued
//! and backing tickets; tickets name their denomination and funding target).
//! Rather than `Rc<RefCell<..>>` webs, the ledger stores every object in a
//! typed [`Arena`] and links objects with copyable generational handles.
//! A destroyed slot's generation is bumped, so dangling handles are detected
//! rather than silently resolving to a recycled object.

use core::fmt;
use core::marker::PhantomData;

/// Untyped (index, generation) pair underlying every handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RawHandle {
    index: u32,
    generation: u32,
}

impl RawHandle {
    /// Builds a raw handle from parts (used in tests and diagnostics).
    pub fn new(index: u32, generation: u32) -> Self {
        Self { index, generation }
    }

    /// The slot index.
    pub fn index(self) -> u32 {
        self.index
    }

    /// The slot generation this handle expects.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// Typed handle to a `T` stored in an [`Arena<T>`].
pub struct Handle<T> {
    raw: RawHandle,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    fn new(raw: RawHandle) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }

    /// The untyped handle, for diagnostics.
    pub fn raw(self) -> RawHandle {
        self.raw
    }

    /// The slot index; stable for the lifetime of the object.
    pub fn index(self) -> u32 {
        self.raw.index
    }
}

// Manual impls: `derive` would bound them on `T`, but handles are plain ids.
impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}
impl<T> PartialEq for Handle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for Handle<T> {}
impl<T> core::hash::Hash for Handle<T> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<T> PartialOrd for Handle<T> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Handle<T> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.raw.cmp(&other.raw)
    }
}
impl<T> fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}v{}", self.raw.index, self.raw.generation)
    }
}

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational arena: O(1) insert, remove, and lookup with ABA-safe
/// handles.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena with room for `capacity` objects, so bulk
    /// population (e.g. a million scheduler clients) does not reallocate
    /// slot storage along the way.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Reserves room for at least `additional` more objects beyond the
    /// currently available free slots.
    pub fn reserve(&mut self, additional: usize) {
        let fresh = additional.saturating_sub(self.free.len());
        self.slots.reserve(fresh);
    }

    /// Creates an empty arena.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, returning its handle.
    pub fn insert(&mut self, value: T) -> Handle<T> {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            return Handle::new(RawHandle::new(index, slot.generation));
        }
        let index = u32::try_from(self.slots.len()).expect("arena exceeded u32 slots");
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        Handle::new(RawHandle::new(index, 0))
    }

    /// Removes the object named by `handle`, returning it if it was live.
    pub fn remove(&mut self, handle: Handle<T>) -> Option<T> {
        let slot = self.slots.get_mut(handle.raw.index as usize)?;
        if slot.generation != handle.raw.generation || slot.value.is_none() {
            return None;
        }
        slot.generation = slot.generation.wrapping_add(1);
        self.len -= 1;
        self.free.push(handle.raw.index);
        slot.value.take()
    }

    /// Shared access to the object named by `handle`.
    pub fn get(&self, handle: Handle<T>) -> Option<&T> {
        let slot = self.slots.get(handle.raw.index as usize)?;
        if slot.generation != handle.raw.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Exclusive access to the object named by `handle`.
    pub fn get_mut(&mut self, handle: Handle<T>) -> Option<&mut T> {
        let slot = self.slots.get_mut(handle.raw.index as usize)?;
        if slot.generation != handle.raw.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Whether `handle` names a live object.
    pub fn contains(&self, handle: Handle<T>) -> bool {
        self.get(handle).is_some()
    }

    /// Iterates over live `(handle, &object)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle<T>, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            slot.value
                .as_ref()
                .map(|v| (Handle::new(RawHandle::new(i as u32, slot.generation)), v))
        })
    }

    /// Iterates over live handles in index order.
    pub fn handles(&self) -> impl Iterator<Item = Handle<T>> + '_ {
        self.iter().map(|(h, _)| h)
    }
}

impl<T: fmt::Debug> fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut arena = Arena::new();
        let a = arena.insert("alpha");
        let b = arena.insert("beta");
        assert_eq!(arena.get(a), Some(&"alpha"));
        assert_eq!(arena.get(b), Some(&"beta"));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn remove_invalidates_handle() {
        let mut arena = Arena::new();
        let a = arena.insert(1);
        assert_eq!(arena.remove(a), Some(1));
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.remove(a), None);
        assert!(arena.is_empty());
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut arena = Arena::new();
        let a = arena.insert(1);
        arena.remove(a);
        let b = arena.insert(2);
        // Same slot, different generation: the old handle must not resolve.
        assert_eq!(a.index(), b.index());
        assert_ne!(a, b);
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.get(b), Some(&2));
    }

    #[test]
    fn get_mut_mutates() {
        let mut arena = Arena::new();
        let a = arena.insert(10);
        *arena.get_mut(a).unwrap() += 5;
        assert_eq!(arena.get(a), Some(&15));
    }

    #[test]
    fn iter_skips_dead_slots() {
        let mut arena = Arena::new();
        let a = arena.insert('a');
        let b = arena.insert('b');
        let c = arena.insert('c');
        arena.remove(b);
        let live: Vec<_> = arena.iter().map(|(h, v)| (h, *v)).collect();
        assert_eq!(live, vec![(a, 'a'), (c, 'c')]);
    }

    #[test]
    fn handles_are_copy_and_hashable() {
        use std::collections::HashSet;
        let mut arena = Arena::new();
        let a = arena.insert(());
        let copy = a;
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&copy));
    }

    #[test]
    fn debug_formats() {
        let mut arena = Arena::new();
        let h = arena.insert(7);
        let s = format!("{h:?}");
        assert!(s.starts_with('#'), "{s}");
        let s = format!("{arena:?}");
        assert!(s.contains('7'), "{s}");
    }
}
