//! Lottery tickets: the representation of resource rights (Section 3.1).
//!
//! Tickets are *abstract* (they quantify rights independently of machine
//! details), *relative* (the fraction of the resource they represent varies
//! with contention), and *uniform* (rights for heterogeneous resources are
//! homogeneously represented). A single [`Ticket`] object may represent any
//! number of logical tickets via its `amount`, like a monetary note's
//! denomination.

use crate::arena::Handle;
use crate::client::ClientId;
use crate::currency::CurrencyId;

/// Handle naming a [`Ticket`] in a ledger.
pub type TicketId = Handle<Ticket>;

/// What a ticket's value flows into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FundingTarget {
    /// The ticket backs a currency (it appears on that currency's backing
    /// list and contributes to its value).
    Currency(CurrencyId),
    /// The ticket funds a schedulable client, giving it resource rights.
    Client(ClientId),
    /// The ticket has been issued but not yet used to fund anything.
    Unfunded,
}

impl FundingTarget {
    /// Returns the funded currency, if any.
    pub fn as_currency(self) -> Option<CurrencyId> {
        match self {
            Self::Currency(c) => Some(c),
            _ => None,
        }
    }

    /// Returns the funded client, if any.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            Self::Client(c) => Some(c),
            _ => None,
        }
    }
}

/// A lottery ticket: `amount` units denominated in `currency`, funding
/// `target`.
///
/// The `active` flag implements the paper's activation rule (Section 4.4):
/// a ticket is active while it is being used by a runnable client to compete
/// in lotteries, and activation propagates through the currency graph at
/// zero-crossings of each currency's active amount.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ticket {
    amount: u64,
    currency: CurrencyId,
    target: FundingTarget,
    active: bool,
}

impl Ticket {
    /// Creates an inactive, unfunded ticket of `amount` units in `currency`.
    pub(crate) fn new(amount: u64, currency: CurrencyId) -> Self {
        Self {
            amount,
            currency,
            target: FundingTarget::Unfunded,
            active: false,
        }
    }

    /// The face amount, in units of the denomination currency.
    pub fn amount(&self) -> u64 {
        self.amount
    }

    /// The currency this ticket is denominated in.
    pub fn currency(&self) -> CurrencyId {
        self.currency
    }

    /// What this ticket currently funds.
    pub fn target(&self) -> FundingTarget {
        self.target
    }

    /// Whether the ticket is active (competing in lotteries).
    pub fn is_active(&self) -> bool {
        self.active
    }

    pub(crate) fn set_target(&mut self, target: FundingTarget) {
        self.target = target;
    }

    pub(crate) fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    pub(crate) fn set_amount(&mut self, amount: u64) {
        self.amount = amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use crate::currency::Currency;

    fn dummy_currency() -> CurrencyId {
        let mut arena: Arena<Currency> = Arena::new();
        arena.insert(Currency::new("c", Default::default()))
    }

    #[test]
    fn new_ticket_is_inactive_and_unfunded() {
        let c = dummy_currency();
        let t = Ticket::new(5, c);
        assert_eq!(t.amount(), 5);
        assert_eq!(t.currency(), c);
        assert_eq!(t.target(), FundingTarget::Unfunded);
        assert!(!t.is_active());
    }

    #[test]
    fn funding_target_accessors() {
        let c = dummy_currency();
        assert_eq!(FundingTarget::Currency(c).as_currency(), Some(c));
        assert_eq!(FundingTarget::Currency(c).as_client(), None);
        assert_eq!(FundingTarget::Unfunded.as_currency(), None);
        assert_eq!(FundingTarget::Unfunded.as_client(), None);
    }
}
