//! Exact rational valuation of the currency graph.
//!
//! Ticket values are ratios by construction — a ticket is worth its
//! denomination's value times `amount / active_amount` (Section 4.4) — so
//! every value in the graph is a rational number of base units. The
//! default [`crate::ledger::Valuator`] computes in `f64`, which is what
//! the paper's prototype effectively does and is exact for graphs like
//! Figure 3; [`ExactValuator`] computes in reduced `u128` fractions
//! instead, with checked arithmetic, so conservation properties hold
//! *bit-for-bit* and deep graphs cannot accumulate rounding.
//!
//! Compensation factors are quantum ratios and stay outside this module:
//! the exact valuator prices *funded* value (tickets through currencies),
//! which is the quantity conservation laws speak about.

use std::collections::HashMap;

use crate::currency::CurrencyId;
use crate::errors::{LotteryError, Result};
use crate::ledger::Ledger;
use crate::ticket::TicketId;

/// A non-negative rational number with reduced `u128` terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    num: u128,
    den: u128,
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };

    /// Builds `num / den`, reduced.
    ///
    /// # Panics
    ///
    /// Panics on a zero denominator — callers divide by *active amounts*
    /// they have already checked to be positive.
    pub fn new(num: u128, den: u128) -> Ratio {
        assert!(den != 0, "zero denominator");
        let g = gcd(num, den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// Builds a whole number.
    pub fn from_int(value: u64) -> Ratio {
        Ratio {
            num: u128::from(value),
            den: 1,
        }
    }

    /// The numerator of the reduced form.
    pub fn numerator(self) -> u128 {
        self.num
    }

    /// The denominator of the reduced form.
    pub fn denominator(self) -> u128 {
        self.den
    }

    /// Checked addition.
    pub fn checked_add(self, other: Ratio) -> Result<Ratio> {
        // a/b + c/d = (a d + c b) / (b d), reduced lazily via new().
        let g = gcd(self.den, other.den);
        let lcm_rhs = other.den / g;
        let den = self
            .den
            .checked_mul(lcm_rhs)
            .ok_or(LotteryError::AmountOverflow)?;
        let left = self
            .num
            .checked_mul(lcm_rhs)
            .ok_or(LotteryError::AmountOverflow)?;
        let right = other
            .num
            .checked_mul(self.den / g)
            .ok_or(LotteryError::AmountOverflow)?;
        let num = left
            .checked_add(right)
            .ok_or(LotteryError::AmountOverflow)?;
        Ok(Ratio::new(num, den))
    }

    /// Checked multiplication by `amount / divisor`.
    pub fn checked_mul_frac(self, amount: u64, divisor: u64) -> Result<Ratio> {
        assert!(divisor != 0, "zero divisor");
        // Cross-reduce before multiplying to keep terms small.
        let a = Ratio::new(u128::from(amount), u128::from(divisor));
        let g1 = gcd(self.num, a.den);
        let g2 = gcd(a.num, self.den);
        let num = (self.num / g1)
            .checked_mul(a.num / g2)
            .ok_or(LotteryError::AmountOverflow)?;
        let den = (self.den / g2)
            .checked_mul(a.den / g1)
            .ok_or(LotteryError::AmountOverflow)?;
        Ok(Ratio::new(num, den))
    }

    /// Whether this is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether the ratio is a whole number.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Lossy conversion for display and comparison with the float path.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b.max(1);
    }
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Memoizing exact valuator over a ledger snapshot.
///
/// The API mirrors [`crate::ledger::Valuator`], producing [`Ratio`]s.
pub struct ExactValuator<'a> {
    ledger: &'a Ledger,
    memo: HashMap<CurrencyId, Ratio>,
}

impl<'a> ExactValuator<'a> {
    /// Creates an exact valuator over the ledger's current state.
    pub fn new(ledger: &'a Ledger) -> Self {
        Self {
            ledger,
            memo: HashMap::new(),
        }
    }

    /// The currency's value in base units, exactly.
    pub fn currency_value(&mut self, currency: CurrencyId) -> Result<Ratio> {
        if let Some(&v) = self.memo.get(&currency) {
            return Ok(v);
        }
        let v = if currency == self.ledger.base() {
            Ratio::from_int(self.ledger.currency(currency)?.active_amount())
        } else {
            let backing = self.ledger.currency(currency)?.backing().to_vec();
            let mut sum = Ratio::ZERO;
            for t in backing {
                if self.ledger.ticket(t)?.is_active() {
                    sum = sum.checked_add(self.ticket_value(t)?)?;
                }
            }
            sum
        };
        self.memo.insert(currency, v);
        Ok(v)
    }

    /// The ticket's value in base units, exactly (zero when inactive).
    pub fn ticket_value(&mut self, ticket: TicketId) -> Result<Ratio> {
        let t = self.ledger.ticket(ticket)?;
        if !t.is_active() {
            return Ok(Ratio::ZERO);
        }
        let denom = t.currency();
        if denom == self.ledger.base() {
            return Ok(Ratio::from_int(t.amount()));
        }
        let active = self.ledger.currency(denom)?.active_amount();
        if active == 0 {
            return Ok(Ratio::ZERO);
        }
        let amount = t.amount();
        let cv = self.currency_value(denom)?;
        cv.checked_mul_frac(amount, active)
    }

    /// The client's *funded* value in base units, exactly (compensation
    /// excluded — see the module docs).
    pub fn client_value(&mut self, client: crate::client::ClientId) -> Result<Ratio> {
        let funding = self.ledger.client(client)?.funding().to_vec();
        let mut sum = Ratio::ZERO;
        for t in funding {
            sum = sum.checked_add(self.ticket_value(t)?)?;
        }
        Ok(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Valuator;

    #[test]
    fn ratio_arithmetic() {
        let half = Ratio::new(1, 2);
        let third = Ratio::new(2, 6);
        assert_eq!(third, Ratio::new(1, 3));
        let sum = half.checked_add(third).unwrap();
        assert_eq!(sum, Ratio::new(5, 6));
        assert_eq!(sum.numerator(), 5);
        assert_eq!(sum.denominator(), 6);
        let scaled = sum.checked_mul_frac(3, 5).unwrap();
        assert_eq!(scaled, Ratio::new(1, 2));
        assert!(!scaled.is_zero());
        assert!(Ratio::ZERO.is_zero());
        assert!(Ratio::from_int(7).is_integer());
        assert_eq!(Ratio::new(3, 4).to_f64(), 0.75);
    }

    #[test]
    fn ratio_overflow_is_an_error() {
        let huge = Ratio::new(u128::MAX - 1, 1);
        assert_eq!(huge.checked_add(huge), Err(LotteryError::AmountOverflow));
        assert_eq!(
            huge.checked_mul_frac(u64::MAX, 1),
            Err(LotteryError::AmountOverflow)
        );
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    /// Figure 3, exactly: thread2 = 400, thread3 = 600, thread4 = 2000,
    /// all integers.
    #[test]
    fn figure3_is_exact() {
        let mut l = Ledger::new();
        let base = l.base();
        let alice = l.create_currency("alice").unwrap();
        let bob = l.create_currency("bob").unwrap();
        let ta = l.issue_root(base, 1000).unwrap();
        let tb = l.issue_root(base, 2000).unwrap();
        l.fund_currency(ta, alice).unwrap();
        l.fund_currency(tb, bob).unwrap();
        let task2 = l.create_currency("task2").unwrap();
        let task3 = l.create_currency("task3").unwrap();
        let f2 = l.issue_root(alice, 200).unwrap();
        let f3 = l.issue_root(bob, 100).unwrap();
        l.fund_currency(f2, task2).unwrap();
        l.fund_currency(f3, task3).unwrap();
        let t2 = l.create_client("thread2");
        let t3 = l.create_client("thread3");
        let t4 = l.create_client("thread4");
        for (cl, cur, amt) in [(t2, task2, 200u64), (t3, task2, 300), (t4, task3, 100)] {
            let t = l.issue_root(cur, amt).unwrap();
            l.fund_client(t, cl).unwrap();
            l.activate_client(cl).unwrap();
        }
        let mut v = ExactValuator::new(&l);
        assert_eq!(v.client_value(t2).unwrap(), Ratio::from_int(400));
        assert_eq!(v.client_value(t3).unwrap(), Ratio::from_int(600));
        assert_eq!(v.client_value(t4).unwrap(), Ratio::from_int(2000));
    }

    /// A graph whose shares are non-terminating in binary (thirds):
    /// exact conservation holds bit-for-bit where floats only get close.
    #[test]
    fn thirds_conserve_exactly() {
        let mut l = Ledger::new();
        let cur = l.create_currency("thirds").unwrap();
        let back = l.issue_root(l.base(), 1000).unwrap();
        l.fund_currency(back, cur).unwrap();
        let clients: Vec<_> = (0..3)
            .map(|i| {
                let c = l.create_client(format!("c{i}"));
                let t = l.issue_root(cur, 1).unwrap();
                l.fund_client(t, c).unwrap();
                l.activate_client(c).unwrap();
                c
            })
            .collect();
        let mut v = ExactValuator::new(&l);
        let mut total = Ratio::ZERO;
        for &c in &clients {
            let value = v.client_value(c).unwrap();
            assert_eq!(value, Ratio::new(1000, 3));
            total = total.checked_add(value).unwrap();
        }
        assert_eq!(total, Ratio::from_int(1000), "exact conservation");
    }

    #[test]
    fn agrees_with_float_valuator() {
        // A three-level graph with awkward divisors.
        let mut l = Ledger::new();
        let a = l.create_currency("a").unwrap();
        let b = l.create_currency("b").unwrap();
        let back = l.issue_root(l.base(), 9973).unwrap();
        l.fund_currency(back, a).unwrap();
        let ab = l.issue_root(a, 7).unwrap();
        l.fund_currency(ab, b).unwrap();
        let other = l.create_client("other");
        let to = l.issue_root(a, 13).unwrap();
        l.fund_client(to, other).unwrap();
        l.activate_client(other).unwrap();
        let cl = l.create_client("cl");
        let t = l.issue_root(b, 17).unwrap();
        l.fund_client(t, cl).unwrap();
        l.activate_client(cl).unwrap();

        let mut exact = ExactValuator::new(&l);
        let mut float = Valuator::new(&l);
        let e = exact.client_value(cl).unwrap().to_f64();
        let f = float.client_funded_value(cl).unwrap();
        assert!((e - f).abs() < 1e-9 * e.max(1.0), "{e} vs {f}");
    }
}
