//! Pseudo-random number generation for lottery draws.
//!
//! The paper's prototype uses the Park–Miller "minimal standard" generator
//! \[Par88\] implemented in ten MIPS instructions via D. Carta's high/low
//! decomposition \[Car90\] (Appendix A of the paper). [`ParkMiller`] reproduces
//! that generator bit-for-bit: the recurrence is
//!
//! ```text
//! S' = (16807 * S) mod (2^31 - 1)
//! ```
//!
//! computed without a division, exactly as the appendix's assembly does.
//!
//! A lottery scheduler does not need cryptographic randomness — it needs a
//! fast generator whose draws are uniform enough that ticket shares converge
//! (Section 2). All simulation entry points take explicit seeds so every
//! experiment in this repository is reproducible.

/// Modulus of the minimal standard generator: the Mersenne prime `2^31 - 1`.
pub const PM_MODULUS: u32 = 0x7FFF_FFFF;

/// Multiplier of the minimal standard generator.
pub const PM_MULTIPLIER: u32 = 16807;

/// Source of uniform random numbers for lottery draws.
///
/// Implementors provide a raw 31-bit draw; the provided methods build
/// unbiased bounded draws and unit-interval floats on top of it.
pub trait SchedRng {
    /// Returns the next raw draw in `[0, 2^31 - 2]`.
    fn next_u31(&mut self) -> u32;

    /// Returns a uniformly distributed `u64` in `[0, bound)`.
    ///
    /// Uses rejection sampling over two raw draws so the result is unbiased
    /// for any `bound` up to `2^62`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero; callers hold lotteries only over non-empty
    /// pools (enforced by [`crate::errors::LotteryError::EmptyLottery`]).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Combine two 31-bit draws into one 62-bit draw.
        let range: u64 = 1 << 62;
        debug_assert!(bound <= range);
        let zone = range - (range % bound);
        loop {
            let hi = u64::from(self.next_u31());
            let lo = u64::from(self.next_u31());
            let v = (hi << 31) | lo;
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // The raw draw lies in [0, PM_MODULUS - 1]; dividing by the modulus
        // therefore yields a value strictly below 1.
        f64::from(self.next_u31()) / f64::from(PM_MODULUS)
    }

    /// Returns a winning ticket value for a lottery with `total` tickets.
    ///
    /// Equivalent to `below(total)` but named for call-site clarity.
    fn winning_ticket(&mut self, total: u64) -> u64 {
        self.below(total)
    }
}

/// The Park–Miller minimal standard generator, as in Appendix A.
///
/// State is a value in `[1, 2^31 - 2]`; zero and the modulus are fixed
/// points and are remapped at construction.
///
/// # Examples
///
/// ```
/// use lottery_core::rng::{ParkMiller, SchedRng};
///
/// let mut rng = ParkMiller::new(1);
/// // The first recurrence step from seed 1 yields 16807; draws are
/// // shifted down by one to include zero.
/// assert_eq!(rng.next_u31(), 16806);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParkMiller {
    state: u32,
}

impl ParkMiller {
    /// Creates a generator from `seed`.
    ///
    /// Seeds of `0` and `2^31 - 1` (fixed points of the recurrence) are
    /// remapped to `1` so every seed yields a usable stream.
    pub fn new(seed: u32) -> Self {
        let mut state = seed % PM_MODULUS;
        if state == 0 {
            state = 1;
        }
        Self { state }
    }

    /// Returns the current internal state.
    ///
    /// Together with [`ParkMiller::from_state`] this makes the generator
    /// checkpointable: record/replay stamps audit logs with the state at
    /// capture start and restores the exact draw stream from it.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Restores a generator from a previously observed [`ParkMiller::state`].
    ///
    /// Unlike [`ParkMiller::new`], which treats its argument as an
    /// arbitrary seed (remapping the recurrence's fixed points), this is
    /// an exact checkpoint restore: the next draw continues the original
    /// stream bit for bit.
    ///
    /// # Panics
    ///
    /// Panics when `state` is outside `[1, 2^31 - 2]` — such a value was
    /// never produced by a live generator, so the checkpoint is corrupt.
    pub fn from_state(state: u32) -> Self {
        assert!(
            (1..PM_MODULUS).contains(&state),
            "invalid Park-Miller checkpoint state {state}"
        );
        Self { state }
    }

    /// Advances the recurrence once, using Carta's decomposition.
    ///
    /// This mirrors the paper's `fastrand` assembly: the 46-bit product
    /// `A * S` is split at bit 31 into `P` (low) and `Q` (high), and
    /// `P + Q` is congruent to the product modulo `2^31 - 1`. A single
    /// conditional fold handles the rare overflow into bit 31.
    #[inline]
    fn step(&mut self) -> u32 {
        let product = u64::from(self.state) * u64::from(PM_MULTIPLIER);
        let p = (product & u64::from(PM_MODULUS)) as u32; // bits 0..31 of A*S
        let q = (product >> 31) as u32; // bits 31..46 of A*S
        let mut s = p + q;
        if s >= PM_MODULUS {
            // The assembly zeroes bit 31 and increments; identical to
            // subtracting the modulus because s < 2 * PM_MODULUS here.
            s -= PM_MODULUS;
        }
        self.state = s;
        s
    }
}

impl SchedRng for ParkMiller {
    fn next_u31(&mut self) -> u32 {
        // The state never reaches the modulus, so draws lie in
        // [1, 2^31 - 2]; subtract one to include zero in the range.
        self.step() - 1
    }
}

/// SplitMix64: an auxiliary generator used to scatter seeds.
///
/// Experiment drivers that need many independent [`ParkMiller`] streams
/// derive their seeds from one `SplitMix64`, which has a full 2^64 period
/// and excellent equidistribution for this purpose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a seed-scattering generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives a fresh Park–Miller stream.
    pub fn park_miller(&mut self) -> ParkMiller {
        ParkMiller::new((self.next_u64() % u64::from(PM_MODULUS - 1)) as u32 + 1)
    }
}

impl SchedRng for SplitMix64 {
    fn next_u31(&mut self) -> u32 {
        // Take the high bits (best mixed) and reduce into [0, 2^31 - 2].
        ((self.next_u64() >> 33) % u64::from(PM_MODULUS)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Park and Miller's published correctness check: starting from seed 1,
    /// the 10,000th generated value must be 1043618065.
    #[test]
    fn park_miller_ten_thousandth_value() {
        let mut rng = ParkMiller::new(1);
        let mut last = 0;
        for _ in 0..10_000 {
            last = rng.step();
        }
        assert_eq!(last, 1_043_618_065);
    }

    #[test]
    fn park_miller_first_values_from_seed_one() {
        // 16807, 16807^2 mod (2^31-1) = 282475249, then 1622650073.
        let mut rng = ParkMiller::new(1);
        assert_eq!(rng.step(), 16_807);
        assert_eq!(rng.step(), 282_475_249);
        assert_eq!(rng.step(), 1_622_650_073);
    }

    #[test]
    fn carta_matches_direct_modular_arithmetic() {
        // The Carta fold must agree with the straightforward 64-bit mod for
        // a long stretch of states, including ones that trigger overflow.
        let mut rng = ParkMiller::new(12_345);
        let mut direct = 12_345u64;
        for _ in 0..100_000 {
            direct = direct * u64::from(PM_MULTIPLIER) % u64::from(PM_MODULUS);
            assert_eq!(u64::from(rng.step()), direct);
        }
    }

    #[test]
    fn from_state_resumes_the_stream_exactly() {
        let mut live = ParkMiller::new(777);
        for _ in 0..1000 {
            live.next_u31();
        }
        let checkpoint = live.state();
        let mut restored = ParkMiller::from_state(checkpoint);
        for _ in 0..1000 {
            assert_eq!(restored.next_u31(), live.next_u31());
        }
    }

    #[test]
    #[should_panic(expected = "invalid Park-Miller checkpoint")]
    fn from_state_rejects_fixed_points() {
        let _ = ParkMiller::from_state(0);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut a = ParkMiller::new(0);
        let mut b = ParkMiller::new(1);
        assert_eq!(a.next_u31(), b.next_u31());
    }

    #[test]
    fn modulus_seed_is_remapped() {
        let mut a = ParkMiller::new(PM_MODULUS);
        let mut b = ParkMiller::new(1);
        assert_eq!(a.next_u31(), b.next_u31());
    }

    #[test]
    fn state_never_leaves_range() {
        let mut rng = ParkMiller::new(987_654_321);
        for _ in 0..50_000 {
            let s = rng.step();
            assert!((1..PM_MODULUS).contains(&s));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = ParkMiller::new(42);
        for bound in [1u64, 2, 3, 7, 20, 1000, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut rng = ParkMiller::new(42);
        for _ in 0..32 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        // Chi-square style sanity check on 10 buckets.
        let mut rng = ParkMiller::new(7);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10) as usize] += 1;
        }
        let expected = n as f64 / 10.0;
        for &c in &counts {
            let rel = (f64::from(c) - expected).abs() / expected;
            assert!(rel < 0.05, "bucket deviates by {rel}: {counts:?}");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = ParkMiller::new(99);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn splitmix_streams_differ() {
        let mut sm = SplitMix64::new(1);
        let mut a = sm.park_miller();
        let mut b = sm.park_miller();
        let sa: Vec<u32> = (0..8).map(|_| a.next_u31()).collect();
        let sb: Vec<u32> = (0..8).map(|_| b.next_u31()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn splitmix_known_first_output() {
        // Reference value from the canonical SplitMix64 description.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn winning_ticket_matches_below() {
        let mut a = ParkMiller::new(5);
        let mut b = ParkMiller::new(5);
        for total in [5u64, 100, 20] {
            assert_eq!(a.winning_ticket(total), b.below(total));
        }
    }
}
