//! The ledger: the kernel object graph of tickets, currencies, and clients.
//!
//! This module implements the interface of Section 4.3 — operations to
//! create and destroy tickets and currencies, to fund and unfund a currency
//! (by adding or removing a ticket from its list of backing tickets), and to
//! compute the current value of tickets and currencies in base units — plus
//! the activation propagation of Section 4.4.
//!
//! # Structure
//!
//! All objects live in generational [`crate::arena::Arena`]s and reference
//! each other by copyable handles, so the arbitrary acyclic currency graph
//! of Figure 3 needs no shared-ownership gymnastics. A distinguished,
//! conserved **base** currency roots the graph; a ticket denominated in base
//! is worth exactly its face amount.
//!
//! # Example
//!
//! Reconstructing Figure 3's currency graph:
//!
//! ```
//! use lottery_core::ledger::Ledger;
//!
//! let mut ledger = Ledger::new();
//! let base = ledger.base();
//! let alice = ledger.create_currency("alice").unwrap();
//! let t = ledger.issue_root(base, 1000).unwrap();
//! ledger.fund_currency(t, alice).unwrap();
//! ```

use std::cell::RefCell;
use std::collections::HashMap;

use lottery_obs::{EventKind, ProbeBus};

use crate::arena::Arena;
use crate::client::{Client, ClientId};
use crate::currency::{Currency, CurrencyId, IssuePolicy, Principal};
use crate::errors::{LotteryError, ObjectKind, Result};
use crate::ticket::{FundingTarget, Ticket, TicketId};

/// The ledger of all tickets, currencies, and clients.
///
/// Every mutating operation bumps an internal *epoch*; callers that cache
/// valuations can compare epochs to decide when to recompute.
#[derive(Debug)]
pub struct Ledger {
    tickets: Arena<Ticket>,
    currencies: Arena<Currency>,
    clients: Arena<Client>,
    base: CurrencyId,
    epoch: u64,
    /// Incremental valuation cache (interior mutability so reads through
    /// `&Ledger` can memoize). See [`Ledger::cached_client_value`].
    cache: RefCell<ValuationCache>,
    /// Probe bus for cache/mutation observability (disabled by default:
    /// emitting through a disabled bus is a single branch).
    bus: ProbeBus,
}

/// Incrementally maintained currency/client values in base units.
///
/// An entry's *presence* is its validity: mutators remove exactly the
/// entries whose values they may have changed (see [`mark_currency`]), and
/// reads recompute absent entries on demand. The `dirty` queue accumulates
/// clients whose cached value was invalidated, as a change notification
/// queue for schedulers that mirror client values into an external
/// structure (a partial-sum tree); it is drained by
/// [`Ledger::drain_dirty_clients`] and is independent of recomputation.
#[derive(Debug, Default)]
struct ValuationCache {
    currencies: HashMap<CurrencyId, f64>,
    clients: HashMap<ClientId, f64>,
    dirty: ShardedDirtyQueue,
    comp: CompensationLedger,
}

/// First-class compensation accounting (Sections 3.4 / 4.5), folded into
/// the valuation cache so compensated weight is tracked *per shard* and
/// travels with a client across shard reassignment.
///
/// Each compensated client (factor > 1) has an entry recording the factor
/// and a snapshot of its *funded* value (excluding compensation) in base
/// units, taken when the factor was granted and refreshed whenever the
/// client is revalued while active. From those the ledger maintains two
/// per-shard sums:
///
/// * **extra** — `(factor − 1) × funded` per client: the base-unit worth of
///   the implicit compensation ticket each shard is carrying. This is the
///   compensation weight surfaced to gauges and the `shards` verb.
/// * **resting** — `factor × funded` summed over compensated clients that
///   are currently *inactive* (blocked). Their cached value is zero, so
///   they are invisible to a shard's partial-sum tree — but this is exactly
///   the weight the tree regains when they wake. Rebalancers add it to raw
///   tree totals to compare *effective* shard weights.
///
/// A client granted compensation while inactive snapshots a funded value of
/// zero; the snapshot is corrected on its next valuation after activation.
#[derive(Debug)]
pub struct CompensationLedger {
    entries: HashMap<ClientId, CompEntry>,
    /// Per-shard sum of `extra` over every compensated client homed there.
    extra: Vec<f64>,
    /// Per-shard sum of `funded + extra` over *inactive* compensated
    /// clients homed there.
    resting: Vec<f64>,
    granted: u64,
    revoked: u64,
}

#[derive(Debug, Clone, Copy)]
struct CompEntry {
    factor: f64,
    /// Funded value (no compensation) in base units at the last refresh.
    funded: f64,
    shard: u32,
    resting: bool,
}

impl CompEntry {
    /// The implicit compensation ticket's worth: `(factor − 1) × funded`.
    fn extra(&self) -> f64 {
        self.funded * (self.factor - 1.0)
    }
}

impl Default for CompensationLedger {
    fn default() -> Self {
        Self::new(1)
    }
}

impl CompensationLedger {
    fn new(shards: usize) -> Self {
        Self {
            entries: HashMap::new(),
            extra: vec![0.0; shards.max(1)],
            resting: vec![0.0; shards.max(1)],
            granted: 0,
            revoked: 0,
        }
    }

    fn clamp(&self, shard: u32) -> usize {
        (shard as usize).min(self.extra.len() - 1)
    }

    fn add_entry(&mut self, e: &CompEntry) {
        let s = self.clamp(e.shard);
        self.extra[s] += e.extra();
        if e.resting {
            self.resting[s] += e.funded + e.extra();
        }
    }

    fn remove_entry(&mut self, e: &CompEntry) {
        let s = self.clamp(e.shard);
        self.extra[s] -= e.extra();
        if e.resting {
            self.resting[s] -= e.funded + e.extra();
        }
    }

    /// Records a grant (or factor update), preserving the resting state of
    /// an existing entry.
    fn record(&mut self, client: ClientId, factor: f64, funded: f64, shard: u32, resting: bool) {
        let resting = self.entries.get(&client).map_or(resting, |e| e.resting);
        if let Some(old) = self.entries.remove(&client) {
            self.remove_entry(&old);
        }
        let e = CompEntry {
            factor,
            funded,
            shard,
            resting,
        };
        self.add_entry(&e);
        self.entries.insert(client, e);
        self.granted += 1;
    }

    /// Updates the funded-value snapshot of an existing entry.
    fn refresh_funded(&mut self, client: ClientId, funded: f64) {
        let Some(mut e) = self.entries.remove(&client) else {
            return;
        };
        self.remove_entry(&e);
        e.funded = funded;
        self.add_entry(&e);
        self.entries.insert(client, e);
    }

    /// Clears a client's compensation (factor back to 1); counts a
    /// revocation when an entry actually existed.
    fn clear(&mut self, client: ClientId) {
        if let Some(e) = self.entries.remove(&client) {
            self.remove_entry(&e);
            self.revoked += 1;
        }
    }

    /// Drops a destroyed client without counting a revocation.
    fn forget(&mut self, client: ClientId) {
        if let Some(e) = self.entries.remove(&client) {
            self.remove_entry(&e);
        }
    }

    /// Flips a client between active and resting, moving its return
    /// weight in or out of the shard's resting sum.
    fn set_resting(&mut self, client: ClientId, resting: bool) {
        let Some(mut e) = self.entries.remove(&client) else {
            return;
        };
        self.remove_entry(&e);
        e.resting = resting;
        self.add_entry(&e);
        self.entries.insert(client, e);
    }

    /// Moves a client's compensated weight to another shard (migration and
    /// steal re-homing) so nothing is lost or double-counted.
    fn rehome(&mut self, client: ClientId, shard: u32) {
        let Some(mut e) = self.entries.remove(&client) else {
            return;
        };
        self.remove_entry(&e);
        e.shard = shard;
        self.add_entry(&e);
        self.entries.insert(client, e);
    }

    /// Changes the shard count and rebuilds the per-shard sums, clamping
    /// out-of-range homes into the new range.
    fn set_shards(&mut self, shards: usize) {
        self.extra = vec![0.0; shards.max(1)];
        self.resting = vec![0.0; shards.max(1)];
        let entries: Vec<CompEntry> = self.entries.values().copied().collect();
        for e in &entries {
            self.add_entry(e);
        }
    }

    fn shard_extra(&self, shard: u32) -> f64 {
        // Clamp tiny negative residue from repeated float +=/−=.
        self.extra
            .get(shard as usize)
            .copied()
            .unwrap_or(0.0)
            .max(0.0)
    }

    fn shard_resting(&self, shard: u32) -> f64 {
        self.resting
            .get(shard as usize)
            .copied()
            .unwrap_or(0.0)
            .max(0.0)
    }

    /// Global compensated weight, recomputed exactly from the entries.
    fn total_extra(&self) -> f64 {
        self.entries.values().map(CompEntry::extra).sum()
    }

    fn factor_of(&self, client: ClientId) -> f64 {
        self.entries.get(&client).map_or(1.0, |e| e.factor)
    }
}

/// Dirty-client notifications partitioned by home shard.
///
/// A distributed scheduler assigns each client a *home shard* (one per
/// CPU); invalidations then land only in the owning shard's queue, so a
/// CPU refreshing its own partial-sum tree drains only the notifications
/// it can act on instead of contending on one global set. With a single
/// shard (the default) this degenerates to exactly the old global queue.
///
/// Storage is dense: client ids are arena indices, so home assignment
/// and pending-membership live in flat vectors indexed by slot — no
/// hashing on the per-decision invalidation path. Each shard's queue is
/// an insertion-ordered `Vec`; a `forget` or re-home leaves a tombstone
/// behind that the next drain skips (membership is authoritative in the
/// per-slot `pending` word, never in the queue vector).
///
/// The queue is plain owned data — `Send`, like the [`Ledger`] holding
/// it — so a real-thread scheduler (`lottery-par`) can move the ledger
/// into a mutex shared by its workers. Per-shard drains keep their point
/// there: each worker takes the lock briefly and drains *only its own
/// shard's* queue, so one worker's invalidation burst never forces
/// another to walk notifications it cannot act on.
#[derive(Debug)]
pub struct ShardedDirtyQueue {
    /// Home shard per client slot; [`NO_SHARD`] routes to shard 0.
    owner: Vec<u32>,
    /// The shard whose queue holds the client's pending notification, or
    /// [`NO_SHARD`] when none is pending. Authoritative for membership.
    pending: Vec<u32>,
    /// Pending notifications per shard, insertion-ordered, possibly with
    /// tombstones (entries whose `pending` word no longer matches).
    queues: Vec<Vec<ClientId>>,
    /// Live (non-tombstoned) notification count per shard.
    live: Vec<usize>,
    /// Times an already-assigned client moved to a different shard.
    reassignments: u64,
}

/// Sentinel for "no shard" in the dense owner / pending vectors.
const NO_SHARD: u32 = u32::MAX;

impl Default for ShardedDirtyQueue {
    fn default() -> Self {
        Self::new(1)
    }
}

impl ShardedDirtyQueue {
    /// Creates a queue with `shards` partitions (at least one).
    pub fn new(shards: usize) -> Self {
        Self {
            owner: Vec::new(),
            pending: Vec::new(),
            queues: vec![Vec::new(); shards.max(1)],
            live: vec![0; shards.max(1)],
            reassignments: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Grows the dense tables to cover `client`'s slot.
    fn ensure_slot(&mut self, client: ClientId) -> usize {
        let slot = client.index() as usize;
        if slot >= self.owner.len() {
            self.owner.resize(slot + 1, NO_SHARD);
            self.pending.resize(slot + 1, NO_SHARD);
        }
        slot
    }

    /// The shard a client's notifications route to. Unassigned or
    /// out-of-range owners clamp into the valid shard range.
    pub fn shard_of(&self, client: ClientId) -> u32 {
        let raw = self
            .owner
            .get(client.index() as usize)
            .copied()
            .unwrap_or(NO_SHARD);
        let shard = if raw == NO_SHARD { 0 } else { raw };
        shard.min(self.queues.len() as u32 - 1)
    }

    /// Pending notifications in one shard (0 for out-of-range shards).
    pub fn depth(&self, shard: u32) -> usize {
        self.live.get(shard as usize).copied().unwrap_or(0)
    }

    /// Total pending notifications across all shards.
    pub fn len(&self) -> usize {
        self.live.iter().sum()
    }

    /// Whether no notifications are pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.live.iter().all(|&n| n == 0)
    }

    /// Times an already-assigned client changed shards.
    pub fn reassignments(&self) -> u64 {
        self.reassignments
    }

    /// Enqueues a notification on the client's home shard (idempotent).
    pub fn insert(&mut self, client: ClientId) {
        let shard = self.shard_of(client);
        let slot = self.ensure_slot(client);
        if self.pending[slot] == NO_SHARD {
            self.pending[slot] = shard;
            self.queues[shard as usize].push(client);
            self.live[shard as usize] += 1;
        }
    }

    /// Re-homes a client, migrating any pending notification with it so
    /// the new owner still hears about the earlier invalidation.
    pub fn assign(&mut self, client: ClientId, shard: u32) {
        let shard = shard.min(self.queues.len() as u32 - 1);
        let old = self.shard_of(client);
        let slot = self.ensure_slot(client);
        if self.owner[slot] != NO_SHARD && old != shard {
            self.reassignments += 1;
        }
        self.owner[slot] = shard;
        if old != shard && self.pending[slot] == old {
            // The old queue keeps a tombstone; the pending word moves.
            self.live[old as usize] -= 1;
            self.pending[slot] = shard;
            self.queues[shard as usize].push(client);
            self.live[shard as usize] += 1;
        }
    }

    /// Drops a client entirely: its pending notification and its home
    /// assignment (on destruction — it must never surface from a drain).
    pub fn forget(&mut self, client: ClientId) {
        let slot = self.ensure_slot(client);
        let pending = self.pending[slot];
        if pending != NO_SHARD {
            self.live[pending as usize] -= 1;
            self.pending[slot] = NO_SHARD;
        }
        self.owner[slot] = NO_SHARD;
    }

    /// Changes the shard count, re-routing pending notifications through
    /// the (clamped) owner map.
    pub fn set_shards(&mut self, shards: usize) {
        let pending: Vec<ClientId> = self.drain_all();
        self.queues = vec![Vec::new(); shards.max(1)];
        self.live = vec![0; shards.max(1)];
        for client in pending {
            self.insert(client);
        }
    }

    /// Drains one shard's pending notifications, in ascending client id.
    pub fn drain_shard(&mut self, shard: u32) -> Vec<ClientId> {
        let mut out = Vec::new();
        self.drain_shard_into(shard, &mut out);
        out
    }

    /// Drains one shard into a caller-owned buffer (cleared first), so
    /// per-draw refresh paths reuse storage instead of allocating.
    ///
    /// Drain order is ascending client id, never hash or insertion
    /// order: downstream structures patch weights (and decide when to
    /// rebuild) in this order, and record/replay requires it to be
    /// identical across runs.
    pub fn drain_shard_into(&mut self, shard: u32, out: &mut Vec<ClientId>) {
        out.clear();
        self.drain_shard_append(shard, out);
        out.sort_unstable();
    }

    /// Drains one shard's live entries (skipping tombstones) onto the end
    /// of `out`, unsorted.
    fn drain_shard_append(&mut self, shard: u32, out: &mut Vec<ClientId>) {
        let Some(q) = self.queues.get_mut(shard as usize) else {
            return;
        };
        for client in q.drain(..) {
            let slot = client.index() as usize;
            if self.pending[slot] == shard {
                self.pending[slot] = NO_SHARD;
                out.push(client);
            }
        }
        self.live[shard as usize] = 0;
    }

    /// Drains every shard (order unspecified).
    pub fn drain_all(&mut self) -> Vec<ClientId> {
        let mut out = Vec::with_capacity(self.len());
        self.drain_all_into(&mut out);
        out
    }

    /// Drains every shard into a caller-owned buffer (cleared first).
    ///
    /// Within each shard the order is ascending client id (see
    /// [`ShardedDirtyQueue::drain_shard_into`]); shards drain in index
    /// order. Deterministic order is a replay invariant.
    pub fn drain_all_into(&mut self, out: &mut Vec<ClientId>) {
        out.clear();
        out.reserve(self.len());
        for shard in 0..self.queues.len() as u32 {
            let start = out.len();
            self.drain_shard_append(shard, out);
            out[start..].sort_unstable();
        }
    }
}

/// Invalidates `start` and every cached entry downstream of it, returning
/// `(currency_entries_removed, client_entries_removed)` for the probe bus.
///
/// Downstream edges run from a currency through its *issued* tickets to the
/// currencies or clients they fund — the reverse of the valuation
/// dependency direction, so no extra edge storage is needed.
///
/// The walk stops at currencies with no cached entry. That early stop is
/// sound because computation preserves the invariant *"a cached entry
/// implies every currency whose value it read is also cached"*: computing a
/// value memoizes its full upstream closure, and this walk removes the full
/// cached downstream closure. An uncached currency therefore has no cached
/// dependents left to invalidate.
fn mark_currency(
    tickets: &Arena<Ticket>,
    currencies: &Arena<Currency>,
    cache: &mut ValuationCache,
    start: CurrencyId,
) -> (u32, u32) {
    let (mut removed_currencies, mut removed_clients) = (0, 0);
    let mut work = vec![start];
    while let Some(cur) = work.pop() {
        if cache.currencies.remove(&cur).is_none() {
            continue;
        }
        removed_currencies += 1;
        let Some(currency) = currencies.get(cur) else {
            continue;
        };
        for &t in currency.issued() {
            match tickets.get(t).map(Ticket::target) {
                Some(FundingTarget::Currency(next)) => work.push(next),
                Some(FundingTarget::Client(client)) => {
                    removed_clients += u32::from(mark_client(cache, client));
                }
                _ => {}
            }
        }
    }
    (removed_currencies, removed_clients)
}

/// Invalidates a client's cached value, queueing a dirty notification;
/// returns whether a cached entry was actually removed.
///
/// A client that was never cached has no dependents to notify: only
/// schedulers that read a value (and thereby cached it) need to hear that
/// it changed.
fn mark_client(cache: &mut ValuationCache, client: ClientId) -> bool {
    if cache.clients.remove(&client).is_some() {
        cache.dirty.insert(client);
        true
    } else {
        false
    }
}

impl Default for Ledger {
    fn default() -> Self {
        Self::new()
    }
}

impl Ledger {
    /// Creates a ledger containing only the base currency.
    pub fn new() -> Self {
        Self::with_client_capacity(0)
    }

    /// Creates a ledger pre-sized for `clients` clients (and one funding
    /// ticket each), so bulk population at scale never reallocates the
    /// object arenas mid-build.
    pub fn with_client_capacity(clients: usize) -> Self {
        let mut currencies = Arena::new();
        let base = currencies.insert(Currency::new("base", IssuePolicy::Restricted(Vec::new())));
        Self {
            tickets: Arena::with_capacity(clients),
            currencies,
            clients: Arena::with_capacity(clients),
            base,
            epoch: 0,
            cache: RefCell::new(ValuationCache::default()),
            bus: ProbeBus::disabled(),
        }
    }

    /// Attaches a probe bus; subsequent mutations and cache traffic emit
    /// structured events through it. The default bus is disabled and costs
    /// one branch per probe site.
    pub fn set_probe_bus(&mut self, bus: ProbeBus) {
        self.bus = bus;
    }

    /// The ledger's current probe bus (cheap to clone; clones share state).
    pub fn probe_bus(&self) -> &ProbeBus {
        &self.bus
    }

    /// The conserved base currency.
    pub fn base(&self) -> CurrencyId {
        self.base
    }

    /// The current mutation epoch.
    ///
    /// Incremented by every operation that can change any valuation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn bump(&mut self) {
        self.epoch += 1;
    }

    // ------------------------------------------------------------------
    // Object accessors.
    // ------------------------------------------------------------------

    /// Shared access to a ticket.
    pub fn ticket(&self, id: TicketId) -> Result<&Ticket> {
        self.tickets.get(id).ok_or(LotteryError::StaleHandle {
            kind: ObjectKind::Ticket,
            handle: id.raw(),
        })
    }

    /// Shared access to a currency.
    pub fn currency(&self, id: CurrencyId) -> Result<&Currency> {
        self.currencies.get(id).ok_or(LotteryError::StaleHandle {
            kind: ObjectKind::Currency,
            handle: id.raw(),
        })
    }

    /// Shared access to a client.
    pub fn client(&self, id: ClientId) -> Result<&Client> {
        self.clients.get(id).ok_or(LotteryError::StaleHandle {
            kind: ObjectKind::Client,
            handle: id.raw(),
        })
    }

    /// Iterates over all live currencies.
    pub fn currencies(&self) -> impl Iterator<Item = (CurrencyId, &Currency)> {
        self.currencies.iter()
    }

    /// Iterates over all live clients.
    pub fn clients(&self) -> impl Iterator<Item = (ClientId, &Client)> {
        self.clients.iter()
    }

    /// Iterates over all live tickets.
    pub fn tickets(&self) -> impl Iterator<Item = (TicketId, &Ticket)> {
        self.tickets.iter()
    }

    // ------------------------------------------------------------------
    // Currency lifecycle.
    // ------------------------------------------------------------------

    /// Creates a currency whose tickets anyone may issue.
    pub fn create_currency(&mut self, name: impl Into<String>) -> Result<CurrencyId> {
        self.create_currency_with_policy(name, IssuePolicy::Anyone)
    }

    /// Creates a currency with an explicit issue policy.
    pub fn create_currency_with_policy(
        &mut self,
        name: impl Into<String>,
        policy: IssuePolicy,
    ) -> Result<CurrencyId> {
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp {
            op: "create-currency",
        });
        Ok(self.currencies.insert(Currency::new(name, policy)))
    }

    /// Replaces a currency's issue policy.
    pub fn set_policy(&mut self, id: CurrencyId, policy: IssuePolicy) -> Result<()> {
        if id == self.base {
            return Err(LotteryError::BaseCurrencyImmutable);
        }
        let cur = self
            .currencies
            .get_mut(id)
            .ok_or(LotteryError::StaleHandle {
                kind: ObjectKind::Currency,
                handle: id.raw(),
            })?;
        cur.set_policy(policy);
        Ok(())
    }

    /// Destroys an empty currency.
    ///
    /// Fails with [`LotteryError::CurrencyInUse`] if any tickets are still
    /// issued in or backing the currency, and with
    /// [`LotteryError::BaseCurrencyImmutable`] for the base currency.
    pub fn destroy_currency(&mut self, id: CurrencyId) -> Result<()> {
        if id == self.base {
            return Err(LotteryError::BaseCurrencyImmutable);
        }
        let cur = self.currency(id)?;
        if !cur.issued().is_empty() || !cur.backing().is_empty() {
            return Err(LotteryError::CurrencyInUse);
        }
        self.currencies.remove(id);
        // An empty currency backs nothing, so removing its (necessarily
        // zero) cached value cannot strand dependents.
        self.cache.get_mut().currencies.remove(&id);
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp {
            op: "destroy-currency",
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Client lifecycle.
    // ------------------------------------------------------------------

    /// Creates an inactive client with no funding.
    pub fn create_client(&mut self, name: impl Into<String>) -> ClientId {
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp {
            op: "create-client",
        });
        self.clients.insert(Client::new(name))
    }

    /// Destroys a client with no funding.
    pub fn destroy_client(&mut self, id: ClientId) -> Result<()> {
        let client = self.client(id)?;
        if !client.funding().is_empty() {
            return Err(LotteryError::ClientInUse);
        }
        self.clients.remove(id);
        // Purge the cached value, any pending dirty notification, and the
        // shard assignment: a destroyed client must never surface from the
        // drain hooks.
        let cache = self.cache.get_mut();
        cache.clients.remove(&id);
        cache.dirty.forget(id);
        cache.comp.forget(id);
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp {
            op: "destroy-client",
        });
        Ok(())
    }

    /// Destroys a client after destroying every ticket that funds it.
    pub fn destroy_client_and_funding(&mut self, id: ClientId) -> Result<()> {
        let funding: Vec<TicketId> = self.client(id)?.funding().to_vec();
        for t in funding {
            self.destroy_ticket(t)?;
        }
        self.destroy_client(id)
    }

    // ------------------------------------------------------------------
    // Ticket lifecycle.
    // ------------------------------------------------------------------

    /// Issues an unfunded ticket of `amount` units in `currency` on behalf
    /// of `principal`.
    ///
    /// Fails with [`LotteryError::PermissionDenied`] when the currency's
    /// issue policy rejects the principal — the mechanism that disallows
    /// unsanctioned ticket inflation across trust boundaries (Section 3.2).
    pub fn issue(
        &mut self,
        currency: CurrencyId,
        amount: u64,
        principal: Principal,
    ) -> Result<TicketId> {
        if amount == 0 {
            return Err(LotteryError::ZeroAmount);
        }
        let cur = self.currency(currency)?;
        if !cur.policy().permits(principal) {
            return Err(LotteryError::PermissionDenied);
        }
        cur.total_amount()
            .checked_add(amount)
            .ok_or(LotteryError::AmountOverflow)?;
        let id = self.tickets.insert(Ticket::new(amount, currency));
        self.currencies
            .get_mut(currency)
            .expect("checked above")
            .add_issued(id, amount);
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp { op: "issue" });
        Ok(id)
    }

    /// Issues a ticket as the root principal (always permitted).
    pub fn issue_root(&mut self, currency: CurrencyId, amount: u64) -> Result<TicketId> {
        self.issue(currency, amount, Principal::ROOT)
    }

    /// Destroys a ticket, unfunding it first if necessary.
    pub fn destroy_ticket(&mut self, id: TicketId) -> Result<()> {
        self.unfund(id)?;
        let ticket = self.tickets.remove(id).expect("unfund verified liveness");
        debug_assert!(!ticket.is_active());
        if let Some(cur) = self.currencies.get_mut(ticket.currency()) {
            cur.remove_issued(id, ticket.amount());
        }
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp {
            op: "destroy-ticket",
        });
        Ok(())
    }

    /// Changes a ticket's face amount in place.
    ///
    /// This implements dynamic ticket inflation/deflation for an already
    /// funded ticket (Section 5.2's Monte-Carlo experiment adjusts ticket
    /// values this way). Activation state is preserved; currency sums are
    /// adjusted.
    pub fn set_amount(&mut self, id: TicketId, amount: u64) -> Result<()> {
        if amount == 0 {
            return Err(LotteryError::ZeroAmount);
        }
        let (old, currency, active, target) = {
            let t = self.ticket(id)?;
            (t.amount(), t.currency(), t.is_active(), t.target())
        };
        if old == amount {
            return Ok(());
        }
        let cur = self.currency(currency)?;
        cur.total_amount()
            .checked_sub(old)
            .and_then(|v| v.checked_add(amount))
            .ok_or(LotteryError::AmountOverflow)?;
        self.currencies
            .get_mut(currency)
            .expect("checked above")
            .adjust_amount(old, amount, active);
        self.tickets
            .get_mut(id)
            .expect("checked above")
            .set_amount(amount);
        if active {
            // The denomination's active amount shifted (diluting every
            // sibling's share) and the ticket's own face value changed.
            self.mark_ticket_change(currency, target);
        }
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp { op: "set-amount" });
        Ok(())
    }

    /// Splits a ticket into several of the same denomination and funding
    /// target.
    ///
    /// Like breaking a monetary note (Section 3.1 likens tickets to notes
    /// "issued in different denominations"): `parts` must be positive and
    /// sum to the ticket's amount. The original ticket keeps the first
    /// part; the returned tickets carry the rest, each funding the same
    /// target with the same activation state. The total value anyone
    /// derives from the currency is unchanged.
    pub fn split_ticket(&mut self, id: TicketId, parts: &[u64]) -> Result<Vec<TicketId>> {
        let (amount, currency, target) = {
            let t = self.ticket(id)?;
            (t.amount(), t.currency(), t.target())
        };
        if parts.is_empty() || parts.contains(&0) {
            return Err(LotteryError::ZeroAmount);
        }
        let sum = parts
            .iter()
            .try_fold(0u64, |acc, &p| acc.checked_add(p))
            .ok_or(LotteryError::AmountOverflow)?;
        if sum != amount {
            return Err(LotteryError::ZeroAmount);
        }
        self.set_amount(id, parts[0])?;
        let mut rest = Vec::with_capacity(parts.len() - 1);
        for &part in &parts[1..] {
            let piece = self.issue_root(currency, part)?;
            match target {
                FundingTarget::Client(c) => self.fund_client(piece, c)?,
                FundingTarget::Currency(c) => self.fund_currency(piece, c)?,
                FundingTarget::Unfunded => {}
            }
            rest.push(piece);
        }
        Ok(rest)
    }

    /// Merges `other` into `ticket`: both must share a denomination and a
    /// funding target; `other` is destroyed and its amount added.
    pub fn merge_tickets(&mut self, ticket: TicketId, other: TicketId) -> Result<()> {
        if ticket == other {
            return Err(LotteryError::ZeroAmount);
        }
        let (a_amt, a_cur, a_target) = {
            let t = self.ticket(ticket)?;
            (t.amount(), t.currency(), t.target())
        };
        let (b_amt, b_cur, b_target) = {
            let t = self.ticket(other)?;
            (t.amount(), t.currency(), t.target())
        };
        if a_cur != b_cur || a_target != b_target {
            return Err(LotteryError::NotTransferred);
        }
        let total = a_amt
            .checked_add(b_amt)
            .ok_or(LotteryError::AmountOverflow)?;
        self.destroy_ticket(other)?;
        self.set_amount(ticket, total)
    }

    // ------------------------------------------------------------------
    // Funding.
    // ------------------------------------------------------------------

    /// Uses `ticket` to fund `client`.
    ///
    /// If the client is active, the ticket is activated and the activation
    /// propagates through the currency graph.
    pub fn fund_client(&mut self, ticket: TicketId, client: ClientId) -> Result<()> {
        self.ticket(ticket)?;
        self.client(client)?;
        self.unfund(ticket)?;
        self.tickets
            .get_mut(ticket)
            .expect("checked above")
            .set_target(FundingTarget::Client(client));
        self.clients
            .get_mut(client)
            .expect("checked above")
            .add_funding(ticket);
        if self.client(client)?.is_active() {
            self.activate_ticket(ticket);
        }
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp { op: "fund-client" });
        Ok(())
    }

    /// Uses `ticket` to back (fund) `currency`.
    ///
    /// Fails with [`LotteryError::CurrencyCycle`] if the funding edge would
    /// make the ticket's denomination depend on `currency` — currency
    /// relationships must form an acyclic graph (Section 3.3). The base
    /// currency cannot be funded: it is conserved by definition.
    pub fn fund_currency(&mut self, ticket: TicketId, currency: CurrencyId) -> Result<()> {
        let denom = self.ticket(ticket)?.currency();
        self.currency(currency)?;
        if currency == self.base {
            return Err(LotteryError::BaseCurrencyImmutable);
        }
        // `currency`'s value will depend on `denom`; reject if `denom`
        // already depends on `currency` (including `denom == currency`).
        if self.depends_on(denom, currency)? {
            return Err(LotteryError::CurrencyCycle);
        }
        self.unfund(ticket)?;
        self.tickets
            .get_mut(ticket)
            .expect("checked above")
            .set_target(FundingTarget::Currency(currency));
        self.currencies
            .get_mut(currency)
            .expect("checked above")
            .add_backing(ticket);
        if self.currency(currency)?.is_active() {
            self.activate_ticket(ticket);
        }
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp {
            op: "fund-currency",
        });
        Ok(())
    }

    /// Removes `ticket` from whatever it funds, deactivating it.
    pub fn unfund(&mut self, ticket: TicketId) -> Result<()> {
        let target = self.ticket(ticket)?.target();
        match target {
            FundingTarget::Unfunded => return Ok(()),
            FundingTarget::Client(c) => {
                self.deactivate_ticket(ticket);
                if let Some(client) = self.clients.get_mut(c) {
                    client.remove_funding(ticket);
                }
            }
            FundingTarget::Currency(c) => {
                self.deactivate_ticket(ticket);
                if let Some(cur) = self.currencies.get_mut(c) {
                    cur.remove_backing(ticket);
                }
            }
        }
        self.tickets
            .get_mut(ticket)
            .expect("checked above")
            .set_target(FundingTarget::Unfunded);
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp { op: "unfund" });
        Ok(())
    }

    /// Whether currency `a`'s value (transitively) depends on currency `b`.
    ///
    /// Dependency edges run from a currency to the denominations of its
    /// backing tickets.
    pub fn depends_on(&self, a: CurrencyId, b: CurrencyId) -> Result<bool> {
        if a == b {
            return Ok(true);
        }
        let mut stack = vec![a];
        let mut seen = vec![a];
        while let Some(cur) = stack.pop() {
            for &t in self.currency(cur)?.backing() {
                let denom = self.ticket(t)?.currency();
                if denom == b {
                    return Ok(true);
                }
                if !seen.contains(&denom) {
                    seen.push(denom);
                    stack.push(denom);
                }
            }
        }
        Ok(false)
    }

    // ------------------------------------------------------------------
    // Activation (Section 4.4).
    // ------------------------------------------------------------------

    /// Marks a client active (e.g. it joined the run queue) and activates
    /// its funding tickets.
    pub fn activate_client(&mut self, id: ClientId) -> Result<()> {
        let client = self.clients.get_mut(id).ok_or(LotteryError::StaleHandle {
            kind: ObjectKind::Client,
            handle: id.raw(),
        })?;
        if client.is_active() {
            return Ok(());
        }
        client.set_active(true);
        let funding: Vec<TicketId> = client.funding().to_vec();
        for t in funding {
            self.activate_ticket(t);
        }
        self.cache.get_mut().comp.set_resting(id, false);
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp {
            op: "activate-client",
        });
        Ok(())
    }

    /// Marks a client inactive (e.g. it blocked) and deactivates its
    /// funding tickets.
    pub fn deactivate_client(&mut self, id: ClientId) -> Result<()> {
        let client = self.clients.get_mut(id).ok_or(LotteryError::StaleHandle {
            kind: ObjectKind::Client,
            handle: id.raw(),
        })?;
        if !client.is_active() {
            return Ok(());
        }
        client.set_active(false);
        let funding: Vec<TicketId> = client.funding().to_vec();
        for t in funding {
            self.deactivate_ticket(t);
        }
        self.cache.get_mut().comp.set_resting(id, true);
        self.bump();
        self.bus.emit(|| EventKind::LedgerOp {
            op: "deactivate-client",
        });
        Ok(())
    }

    /// Activates one ticket; if its denomination's active amount crosses
    /// zero, the activation propagates to the denomination's backing
    /// tickets, and so on toward the base currency.
    fn activate_ticket(&mut self, id: TicketId) {
        let mut work = vec![id];
        while let Some(tid) = work.pop() {
            let (amount, denom, already, target) = {
                let t = self.tickets.get(tid).expect("ticket liveness invariant");
                (t.amount(), t.currency(), t.is_active(), t.target())
            };
            if already {
                continue;
            }
            self.tickets
                .get_mut(tid)
                .expect("checked above")
                .set_active(true);
            self.mark_ticket_change(denom, target);
            let crossed = self
                .currencies
                .get_mut(denom)
                .expect("denomination liveness invariant")
                .activate_amount(amount);
            if crossed {
                let backing = self
                    .currencies
                    .get(denom)
                    .expect("checked above")
                    .backing()
                    .to_vec();
                work.extend(backing);
            }
        }
    }

    /// Deactivates one ticket with symmetric zero-crossing propagation.
    fn deactivate_ticket(&mut self, id: TicketId) {
        let mut work = vec![id];
        while let Some(tid) = work.pop() {
            let (amount, denom, active, target) = {
                let t = self.tickets.get(tid).expect("ticket liveness invariant");
                (t.amount(), t.currency(), t.is_active(), t.target())
            };
            if !active {
                continue;
            }
            self.tickets
                .get_mut(tid)
                .expect("checked above")
                .set_active(false);
            self.mark_ticket_change(denom, target);
            let crossed = self
                .currencies
                .get_mut(denom)
                .expect("denomination liveness invariant")
                .deactivate_amount(amount);
            if crossed {
                let backing = self
                    .currencies
                    .get(denom)
                    .expect("checked above")
                    .backing()
                    .to_vec();
                work.extend(backing);
            }
        }
    }

    // ------------------------------------------------------------------
    // Compensation (Sections 3.4 / 4.5).
    // ------------------------------------------------------------------

    /// Sets a client's compensation factor directly.
    ///
    /// Prefer [`crate::compensation::grant`] and
    /// [`crate::compensation::clear`], which derive the factor from quantum
    /// usage.
    pub fn set_compensation(&mut self, id: ClientId, factor: f64) -> Result<()> {
        // NaN fails the finiteness check; negatives and sub-unity factors
        // fail the comparison.
        if factor < 1.0 || !factor.is_finite() {
            // A factor below one would *penalize* the client; the mechanism
            // only ever inflates (Section 3.4).
            return Err(LotteryError::ZeroAmount);
        }
        let client = self.clients.get_mut(id).ok_or(LotteryError::StaleHandle {
            kind: ObjectKind::Client,
            handle: id.raw(),
        })?;
        if client.compensation() == factor {
            // No value changed; skip the epoch bump and cache invalidation
            // (the dispatcher clears compensation on every pick, which is
            // almost always already 1.0).
            return Ok(());
        }
        client.set_compensation(factor);
        let active = client.is_active();
        if factor > 1.0 {
            // Snapshot the implicit compensation ticket's base-unit worth
            // against the client's home shard. A throwaway valuator keeps
            // the incremental cache (and its probe traffic) untouched; an
            // inactive client snapshots zero and is corrected on its next
            // valuation after activation.
            let funded = if active {
                Valuator::new(self).client_funded_value(id)?
            } else {
                0.0
            };
            let cache = self.cache.get_mut();
            let shard = cache.dirty.shard_of(id);
            cache.comp.record(id, factor, funded, shard, !active);
        } else {
            self.cache.get_mut().comp.clear(id);
        }
        let removed = mark_client(self.cache.get_mut(), id);
        self.bump();
        if removed {
            let dirty_depth = self.cache.get_mut().dirty.len() as u32;
            self.bus.emit(|| EventKind::CacheInvalidate {
                currencies: 0,
                clients: 1,
                dirty_depth,
            });
        }
        self.bus.emit(|| EventKind::LedgerOp {
            op: "set-compensation",
        });
        Ok(())
    }

    /// The compensation factor currently recorded for `client` (1.0 when
    /// uncompensated or unknown).
    pub fn compensation_factor(&self, client: ClientId) -> f64 {
        self.cache.borrow().comp.factor_of(client)
    }

    /// Compensated weight homed on one shard: the summed base-unit worth
    /// of the implicit compensation tickets its clients hold.
    pub fn compensation_shard_weight(&self, shard: u32) -> f64 {
        self.cache.borrow().comp.shard_extra(shard)
    }

    /// Resting compensated weight homed on one shard: `factor × funded`
    /// summed over compensated clients that are currently inactive. This
    /// is the weight the shard's partial-sum tree regains when they wake,
    /// and what a rebalancer must add to raw tree totals to compare
    /// *effective* shard weights.
    pub fn compensation_resting_weight(&self, shard: u32) -> f64 {
        self.cache.borrow().comp.shard_resting(shard)
    }

    /// Global compensated weight across all shards, recomputed exactly
    /// from the per-client entries (the conservation invariant: per-shard
    /// weights must sum to this).
    pub fn compensation_total_weight(&self) -> f64 {
        self.cache.borrow().comp.total_extra()
    }

    /// Number of clients currently holding a compensation factor > 1.
    pub fn compensated_clients(&self) -> usize {
        self.cache.borrow().comp.entries.len()
    }

    /// Compensation grants recorded since the ledger was created.
    pub fn compensations_granted(&self) -> u64 {
        self.cache.borrow().comp.granted
    }

    /// Compensation revocations (factor cleared back to 1) recorded since
    /// the ledger was created.
    pub fn compensations_revoked(&self) -> u64 {
        self.cache.borrow().comp.revoked
    }

    // ------------------------------------------------------------------
    // Incremental valuation (cache-backed).
    // ------------------------------------------------------------------

    /// Invalidates everything a ticket's value change can reach: the
    /// denomination's downstream subgraph (its active amount shifted) and
    /// the ticket's own funding target.
    ///
    /// The target must be marked explicitly — not only via the
    /// denomination — because the early-stopping invariant of
    /// [`mark_currency`] only covers dependents that *read* the
    /// denomination's value. A target valued while this ticket was
    /// inactive (or a client funded by a base-denominated ticket) never
    /// read it, yet its value changes with the ticket's.
    fn mark_ticket_change(&mut self, denom: CurrencyId, target: FundingTarget) {
        let cache = self.cache.get_mut();
        let (mut currencies, mut clients) =
            mark_currency(&self.tickets, &self.currencies, cache, denom);
        match target {
            FundingTarget::Currency(c) => {
                let (more_cur, more_cli) = mark_currency(&self.tickets, &self.currencies, cache, c);
                currencies += more_cur;
                clients += more_cli;
            }
            FundingTarget::Client(c) => clients += u32::from(mark_client(cache, c)),
            FundingTarget::Unfunded => {}
        }
        if currencies > 0 || clients > 0 {
            let dirty_depth = cache.dirty.len() as u32;
            self.bus.emit(|| EventKind::CacheInvalidate {
                currencies,
                clients,
                dirty_depth,
            });
        }
    }

    /// The value of `client` in base units (including compensation),
    /// revalidating only cache entries invalidated since the last read.
    ///
    /// Semantically identical to a fresh [`Valuator::client_value`], but
    /// amortized: a warm read is a hash lookup, and after a mutation only
    /// the invalidated subgraph is walked again — so per-read cost is
    /// independent of the currency graph's depth once warm.
    pub fn cached_client_value(&self, client: ClientId) -> Result<f64> {
        let mut cache = self.cache.borrow_mut();
        self.compute_client_value(&mut cache, client)
    }

    /// The value of `currency` in base units, served from the incremental
    /// cache (see [`Ledger::cached_client_value`]).
    pub fn cached_currency_value(&self, currency: CurrencyId) -> Result<f64> {
        let mut cache = self.cache.borrow_mut();
        self.compute_currency_value(&mut cache, currency)
    }

    /// Drains the queue of clients whose cached value was invalidated
    /// since the previous drain.
    ///
    /// Schedulers that mirror client values into an external structure
    /// (e.g. a partial-sum tree) call this before each draw and refresh
    /// exactly the returned clients. Order is unspecified; destroyed
    /// clients never appear.
    pub fn drain_dirty_clients(&mut self) -> Vec<ClientId> {
        let mut drained = Vec::new();
        self.drain_dirty_clients_into(&mut drained);
        drained
    }

    /// [`Ledger::drain_dirty_clients`] into a caller-owned buffer
    /// (cleared first) — the draw-path variant: a scheduler holding its
    /// scratch `Vec` pays no allocation per dispatch.
    pub fn drain_dirty_clients_into(&mut self, out: &mut Vec<ClientId>) {
        self.cache.get_mut().dirty.drain_all_into(out);
        if !out.is_empty() {
            let count = out.len() as u32;
            self.bus.emit(|| EventKind::DirtyDrain { drained: count });
        }
    }

    // ------------------------------------------------------------------
    // Sharded dirty notifications (distributed schedulers).
    // ------------------------------------------------------------------

    /// Partitions future dirty-client notifications across `shards`
    /// queues (clamped to at least one). Pending notifications are
    /// re-routed through the current home assignments, so nothing is
    /// lost by resizing mid-run. One shard — the default — behaves
    /// exactly like the unsharded queue.
    pub fn set_dirty_shards(&mut self, shards: usize) {
        let cache = self.cache.get_mut();
        cache.dirty.set_shards(shards);
        cache.comp.set_shards(cache.dirty.shards());
    }

    /// Number of dirty-notification shards.
    pub fn dirty_shards(&self) -> usize {
        self.cache.borrow().dirty.shards()
    }

    /// Assigns a client's home shard; any pending notification migrates
    /// with it. Out-of-range shards clamp to the last shard.
    pub fn assign_dirty_shard(&mut self, client: ClientId, shard: u32) {
        let cache = self.cache.get_mut();
        cache.dirty.assign(client, shard);
        // Compensated weight travels with the client's home: re-home its
        // entry to the (clamped) shard the dirty queue settled on.
        let clamped = cache.dirty.shard_of(client);
        cache.comp.rehome(client, clamped);
    }

    /// The shard a client's notifications currently route to.
    pub fn dirty_shard_of(&self, client: ClientId) -> u32 {
        self.cache.borrow().dirty.shard_of(client)
    }

    /// Pending notifications on one shard.
    pub fn dirty_shard_depth(&self, shard: u32) -> usize {
        self.cache.borrow().dirty.depth(shard)
    }

    /// Times an already-assigned client was moved to a different shard
    /// (the migration count a rebalancer accumulates).
    pub fn dirty_shard_reassignments(&self) -> u64 {
        self.cache.borrow().dirty.reassignments()
    }

    /// Drains the invalidation notifications owned by one shard, leaving
    /// every other shard's queue untouched.
    pub fn drain_dirty_shard(&mut self, shard: u32) -> Vec<ClientId> {
        let mut drained = Vec::new();
        self.drain_dirty_shard_into(shard, &mut drained);
        drained
    }

    /// [`Ledger::drain_dirty_shard`] into a caller-owned buffer (cleared
    /// first), allocation-free on the per-CPU draw path.
    pub fn drain_dirty_shard_into(&mut self, shard: u32, out: &mut Vec<ClientId>) {
        self.cache.get_mut().dirty.drain_shard_into(shard, out);
        if !out.is_empty() {
            let count = out.len() as u32;
            self.bus.emit(|| EventKind::DirtyDrain { drained: count });
        }
    }

    /// Number of currently valid cached currency entries (for tests and
    /// instrumentation).
    pub fn cached_currency_entries(&self) -> usize {
        self.cache.borrow().currencies.len()
    }

    fn compute_currency_value(
        &self,
        cache: &mut ValuationCache,
        currency: CurrencyId,
    ) -> Result<f64> {
        if let Some(&v) = cache.currencies.get(&currency) {
            self.bus.emit(|| EventKind::CacheLookup {
                kind: "currency",
                hit: true,
            });
            return Ok(v);
        }
        self.bus.emit(|| EventKind::CacheLookup {
            kind: "currency",
            hit: false,
        });
        let v = if currency == self.base {
            self.currency(currency)?.active_amount() as f64
        } else {
            let mut sum = 0.0;
            for &t in self.currency(currency)?.backing() {
                if self.ticket(t)?.is_active() {
                    sum += self.compute_ticket_value(cache, t)?;
                }
            }
            sum
        };
        cache.currencies.insert(currency, v);
        Ok(v)
    }

    fn compute_ticket_value(&self, cache: &mut ValuationCache, ticket: TicketId) -> Result<f64> {
        let t = self.ticket(ticket)?;
        if !t.is_active() {
            return Ok(0.0);
        }
        let denom = t.currency();
        let amount = t.amount() as f64;
        if denom == self.base {
            return Ok(amount);
        }
        let active = self.currency(denom)?.active_amount();
        if active == 0 {
            return Ok(0.0);
        }
        let cv = self.compute_currency_value(cache, denom)?;
        Ok(cv * amount / active as f64)
    }

    fn compute_client_value(&self, cache: &mut ValuationCache, client: ClientId) -> Result<f64> {
        if let Some(&v) = cache.clients.get(&client) {
            self.bus.emit(|| EventKind::CacheLookup {
                kind: "client",
                hit: true,
            });
            return Ok(v);
        }
        self.bus.emit(|| EventKind::CacheLookup {
            kind: "client",
            hit: false,
        });
        let c = self.client(client)?;
        let comp = c.compensation();
        let mut sum = 0.0;
        for &t in c.funding() {
            sum += self.compute_ticket_value(cache, t)?;
        }
        if comp > 1.0 && c.is_active() {
            // Keep the compensation ledger's funded-value snapshot in step
            // with the freshest valuation (corrects grants that happened
            // while the client was inactive and funded nothing).
            cache.comp.refresh_funded(client, sum);
        }
        let v = sum * comp;
        cache.clients.insert(client, v);
        Ok(v)
    }
}

/// Memoizing valuator over a ledger snapshot.
///
/// Computes currency, ticket, and client values in base units per
/// Section 4.4:
///
/// * a currency's value is the sum of its *active* backing tickets' values;
/// * a ticket's value is its denomination's value times the ticket's share
///   of the denomination's active amount;
/// * a ticket denominated in the base currency is worth its face amount;
/// * a client's value is the sum of its active funding tickets' values,
///   times its compensation factor.
///
/// Values are memoized per currency, so valuing every runnable client costs
/// one graph walk. Construct a fresh `Valuator` (or call
/// [`Valuator::refresh`]) after ledger mutations; [`Valuator::is_stale`]
/// reports whether the ledger has moved on.
pub struct Valuator<'a> {
    ledger: &'a Ledger,
    epoch: u64,
    currency_values: HashMap<CurrencyId, f64>,
}

impl<'a> Valuator<'a> {
    /// Creates a valuator for the ledger's current epoch.
    pub fn new(ledger: &'a Ledger) -> Self {
        Self {
            ledger,
            epoch: ledger.epoch(),
            currency_values: HashMap::new(),
        }
    }

    /// Whether the ledger has been mutated since this valuator was built.
    pub fn is_stale(&self) -> bool {
        self.epoch != self.ledger.epoch()
    }

    /// Drops memoized values (after external mutation via a new borrow).
    pub fn refresh(&mut self) {
        self.epoch = self.ledger.epoch();
        self.currency_values.clear();
    }

    /// The value of `currency` in base units.
    pub fn currency_value(&mut self, currency: CurrencyId) -> Result<f64> {
        if let Some(&v) = self.currency_values.get(&currency) {
            return Ok(v);
        }
        let v = if currency == self.ledger.base() {
            // By definition a base ticket is worth its amount, so the base
            // currency's value equals its active amount.
            self.ledger.currency(currency)?.active_amount() as f64
        } else {
            let backing = self.ledger.currency(currency)?.backing().to_vec();
            let mut sum = 0.0;
            for t in backing {
                if self.ledger.ticket(t)?.is_active() {
                    sum += self.ticket_value(t)?;
                }
            }
            sum
        };
        self.currency_values.insert(currency, v);
        Ok(v)
    }

    /// The value of `ticket` in base units.
    ///
    /// An inactive ticket (or one denominated in a currency with zero
    /// active amount) is worth zero.
    pub fn ticket_value(&mut self, ticket: TicketId) -> Result<f64> {
        let t = self.ledger.ticket(ticket)?;
        if !t.is_active() {
            return Ok(0.0);
        }
        let denom = t.currency();
        let amount = t.amount() as f64;
        if denom == self.ledger.base() {
            return Ok(amount);
        }
        let active = self.ledger.currency(denom)?.active_amount();
        if active == 0 {
            return Ok(0.0);
        }
        let cv = self.currency_value(denom)?;
        Ok(cv * amount / active as f64)
    }

    /// The value of `client` in base units, including compensation.
    pub fn client_value(&mut self, client: ClientId) -> Result<f64> {
        let c = self.ledger.client(client)?;
        let comp = c.compensation();
        let funding = c.funding().to_vec();
        let mut sum = 0.0;
        for t in funding {
            sum += self.ticket_value(t)?;
        }
        Ok(sum * comp)
    }

    /// The value of `client` in base units, excluding compensation.
    pub fn client_funded_value(&mut self, client: ClientId) -> Result<f64> {
        let c = self.ledger.client(client)?;
        let funding = c.funding().to_vec();
        let mut sum = 0.0;
        for t in funding {
            sum += self.ticket_value(t)?;
        }
        Ok(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real-thread backend moves a ledger into a mutex shared across
    /// OS workers; that requires `Send` (the valuation cache's `RefCell`
    /// keeps it `!Sync`, which the mutex provides). A regression here is
    /// a compile error, not a runtime failure.
    #[test]
    fn ledger_and_dirty_queue_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Ledger>();
        assert_send::<ShardedDirtyQueue>();
    }

    /// Builds the Figure 3 currency graph and checks the published values:
    /// thread2 = 400, thread3 = 600, thread4 = 2000 base units.
    #[test]
    fn figure3_currency_graph() {
        let mut l = Ledger::new();
        let base = l.base();

        let alice = l.create_currency("alice").unwrap();
        let bob = l.create_currency("bob").unwrap();
        let t_alice = l.issue_root(base, 1000).unwrap();
        let t_bob = l.issue_root(base, 2000).unwrap();
        l.fund_currency(t_alice, alice).unwrap();
        l.fund_currency(t_bob, bob).unwrap();

        let task1 = l.create_currency("task1").unwrap();
        let task2 = l.create_currency("task2").unwrap();
        let task3 = l.create_currency("task3").unwrap();
        let t_task1 = l.issue_root(alice, 100).unwrap();
        let t_task2 = l.issue_root(alice, 200).unwrap();
        let t_task3 = l.issue_root(bob, 100).unwrap();
        l.fund_currency(t_task1, task1).unwrap();
        l.fund_currency(t_task2, task2).unwrap();
        l.fund_currency(t_task3, task3).unwrap();

        let thread1 = l.create_client("thread1");
        let thread2 = l.create_client("thread2");
        let thread3 = l.create_client("thread3");
        let thread4 = l.create_client("thread4");
        let f1 = l.issue_root(task1, 100).unwrap();
        let f2 = l.issue_root(task2, 200).unwrap();
        let f3 = l.issue_root(task2, 300).unwrap();
        let f4 = l.issue_root(task3, 100).unwrap();
        l.fund_client(f1, thread1).unwrap();
        l.fund_client(f2, thread2).unwrap();
        l.fund_client(f3, thread3).unwrap();
        l.fund_client(f4, thread4).unwrap();

        // task1 is inactive: thread1 never becomes runnable.
        l.activate_client(thread2).unwrap();
        l.activate_client(thread3).unwrap();
        l.activate_client(thread4).unwrap();

        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(thread1).unwrap(), 0.0);
        assert_eq!(v.client_value(thread2).unwrap(), 400.0);
        assert_eq!(v.client_value(thread3).unwrap(), 600.0);
        assert_eq!(v.client_value(thread4).unwrap(), 2000.0);

        // Figure 3's annotations: alice's active amount is 200 (task1's
        // 100 inactive), task2's is 500, and the runnable total is 3000.
        assert_eq!(l.currency(alice).unwrap().active_amount(), 200);
        assert_eq!(l.currency(task2).unwrap().active_amount(), 500);
        assert_eq!(v.currency_value(alice).unwrap(), 1000.0);
        assert_eq!(v.currency_value(bob).unwrap(), 2000.0);
        let total: f64 = [thread2, thread3, thread4]
            .iter()
            .map(|&c| v.client_value(c).unwrap())
            .sum();
        assert_eq!(total, 3000.0);
    }

    #[test]
    fn base_ticket_value_is_face_amount() {
        let mut l = Ledger::new();
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), 123).unwrap();
        l.fund_client(t, c).unwrap();
        l.activate_client(c).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.ticket_value(t).unwrap(), 123.0);
        assert_eq!(v.client_value(c).unwrap(), 123.0);
    }

    #[test]
    fn inactive_client_is_worth_zero() {
        let mut l = Ledger::new();
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), 50).unwrap();
        l.fund_client(t, c).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(c).unwrap(), 0.0);
    }

    #[test]
    fn deactivation_redistributes_value() {
        // Two clients in one currency: deactivating one doubles the other's
        // share of the currency's value (relative tickets, Section 2.1).
        let mut l = Ledger::new();
        let cur = l.create_currency("shared").unwrap();
        let back = l.issue_root(l.base(), 1000).unwrap();
        l.fund_currency(back, cur).unwrap();
        let a = l.create_client("a");
        let b = l.create_client("b");
        let ta = l.issue_root(cur, 100).unwrap();
        let tb = l.issue_root(cur, 100).unwrap();
        l.fund_client(ta, a).unwrap();
        l.fund_client(tb, b).unwrap();
        l.activate_client(a).unwrap();
        l.activate_client(b).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(a).unwrap(), 500.0);

        l.deactivate_client(b).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(a).unwrap(), 1000.0);
        assert_eq!(v.client_value(b).unwrap(), 0.0);
    }

    #[test]
    fn zero_crossing_propagates_to_base() {
        let mut l = Ledger::new();
        let cur = l.create_currency("c").unwrap();
        let back = l.issue_root(l.base(), 10).unwrap();
        l.fund_currency(back, cur).unwrap();
        let a = l.create_client("a");
        let ta = l.issue_root(cur, 1).unwrap();
        l.fund_client(ta, a).unwrap();

        assert!(!l.ticket(back).unwrap().is_active());
        l.activate_client(a).unwrap();
        assert!(l.ticket(back).unwrap().is_active());
        assert_eq!(l.currency(l.base()).unwrap().active_amount(), 10);

        l.deactivate_client(a).unwrap();
        assert!(!l.ticket(back).unwrap().is_active());
        assert_eq!(l.currency(l.base()).unwrap().active_amount(), 0);
    }

    #[test]
    fn cycle_rejected() {
        let mut l = Ledger::new();
        let a = l.create_currency("a").unwrap();
        let b = l.create_currency("b").unwrap();
        // a backed by ticket in b.
        let t1 = l.issue_root(b, 10).unwrap();
        l.fund_currency(t1, a).unwrap();
        // b backed by ticket in a: cycle.
        let t2 = l.issue_root(a, 10).unwrap();
        assert_eq!(l.fund_currency(t2, b), Err(LotteryError::CurrencyCycle));
    }

    #[test]
    fn self_cycle_rejected() {
        let mut l = Ledger::new();
        let a = l.create_currency("a").unwrap();
        let t = l.issue_root(a, 10).unwrap();
        assert_eq!(l.fund_currency(t, a), Err(LotteryError::CurrencyCycle));
    }

    #[test]
    fn diamond_graph_is_legal() {
        // Acyclic but not a tree: d backed by tickets in b and c, both
        // backed by base. The paper allows arbitrary acyclic graphs.
        let mut l = Ledger::new();
        let b = l.create_currency("b").unwrap();
        let c = l.create_currency("c").unwrap();
        let d = l.create_currency("d").unwrap();
        let tb = l.issue_root(l.base(), 100).unwrap();
        let tc = l.issue_root(l.base(), 300).unwrap();
        l.fund_currency(tb, b).unwrap();
        l.fund_currency(tc, c).unwrap();
        let db = l.issue_root(b, 1).unwrap();
        let dc = l.issue_root(c, 1).unwrap();
        l.fund_currency(db, d).unwrap();
        l.fund_currency(dc, d).unwrap();
        let cl = l.create_client("cl");
        let t = l.issue_root(d, 7).unwrap();
        l.fund_client(t, cl).unwrap();
        l.activate_client(cl).unwrap();
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(cl).unwrap(), 400.0);
    }

    #[test]
    fn base_cannot_be_funded_or_destroyed() {
        let mut l = Ledger::new();
        let c = l.create_currency("c").unwrap();
        let t = l.issue_root(c, 5).unwrap();
        assert_eq!(
            l.fund_currency(t, l.base()),
            Err(LotteryError::BaseCurrencyImmutable)
        );
        assert_eq!(
            l.destroy_currency(l.base()),
            Err(LotteryError::BaseCurrencyImmutable)
        );
    }

    #[test]
    fn permissions_enforced() {
        let mut l = Ledger::new();
        let c = l
            .create_currency_with_policy("locked", IssuePolicy::Restricted(vec![Principal(3)]))
            .unwrap();
        assert_eq!(
            l.issue(c, 5, Principal(4)),
            Err(LotteryError::PermissionDenied)
        );
        assert!(l.issue(c, 5, Principal(3)).is_ok());
        assert!(l.issue(c, 5, Principal::ROOT).is_ok());
    }

    #[test]
    fn zero_amount_rejected() {
        let mut l = Ledger::new();
        assert_eq!(l.issue_root(l.base(), 0), Err(LotteryError::ZeroAmount));
    }

    #[test]
    fn destroy_in_use_rejected() {
        let mut l = Ledger::new();
        let c = l.create_currency("c").unwrap();
        let t = l.issue_root(c, 5).unwrap();
        assert_eq!(l.destroy_currency(c), Err(LotteryError::CurrencyInUse));
        l.destroy_ticket(t).unwrap();
        assert!(l.destroy_currency(c).is_ok());
    }

    #[test]
    fn destroy_client_with_funding_rejected_then_allowed() {
        let mut l = Ledger::new();
        let cl = l.create_client("cl");
        let t = l.issue_root(l.base(), 5).unwrap();
        l.fund_client(t, cl).unwrap();
        assert_eq!(l.destroy_client(cl), Err(LotteryError::ClientInUse));
        l.destroy_client_and_funding(cl).unwrap();
        assert!(l.client(cl).is_err());
        assert!(l.ticket(t).is_err());
    }

    #[test]
    fn destroy_active_ticket_maintains_sums() {
        let mut l = Ledger::new();
        let cl = l.create_client("cl");
        let t = l.issue_root(l.base(), 5).unwrap();
        l.fund_client(t, cl).unwrap();
        l.activate_client(cl).unwrap();
        assert_eq!(l.currency(l.base()).unwrap().active_amount(), 5);
        l.destroy_ticket(t).unwrap();
        assert_eq!(l.currency(l.base()).unwrap().active_amount(), 0);
        assert_eq!(l.currency(l.base()).unwrap().total_amount(), 0);
        assert!(l.client(cl).unwrap().funding().is_empty());
    }

    #[test]
    fn set_amount_adjusts_currency_sums() {
        let mut l = Ledger::new();
        let cl = l.create_client("cl");
        let t = l.issue_root(l.base(), 100).unwrap();
        l.fund_client(t, cl).unwrap();
        l.activate_client(cl).unwrap();
        l.set_amount(t, 400).unwrap();
        assert_eq!(l.currency(l.base()).unwrap().active_amount(), 400);
        assert_eq!(l.currency(l.base()).unwrap().total_amount(), 400);
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(cl).unwrap(), 400.0);
    }

    #[test]
    fn refund_moves_ticket_between_clients() {
        let mut l = Ledger::new();
        let a = l.create_client("a");
        let b = l.create_client("b");
        let t = l.issue_root(l.base(), 10).unwrap();
        l.fund_client(t, a).unwrap();
        l.activate_client(a).unwrap();
        l.activate_client(b).unwrap();
        l.fund_client(t, b).unwrap();
        assert!(l.client(a).unwrap().funding().is_empty());
        assert_eq!(l.client(b).unwrap().funding(), &[t]);
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(a).unwrap(), 0.0);
        assert_eq!(v.client_value(b).unwrap(), 10.0);
    }

    #[test]
    fn compensation_scales_client_value() {
        let mut l = Ledger::new();
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), 400).unwrap();
        l.fund_client(t, c).unwrap();
        l.activate_client(c).unwrap();
        l.set_compensation(c, 5.0).unwrap();
        let mut v = Valuator::new(&l);
        // Section 4.5's example: a 400-unit thread using 1/5 of its quantum
        // competes as if holding 2000 base units.
        assert_eq!(v.client_value(c).unwrap(), 2000.0);
        assert_eq!(v.client_funded_value(c).unwrap(), 400.0);
    }

    #[test]
    fn compensation_below_one_rejected() {
        let mut l = Ledger::new();
        let c = l.create_client("c");
        assert!(l.set_compensation(c, 0.5).is_err());
        assert!(l.set_compensation(c, f64::NAN).is_err());
        assert!(l.set_compensation(c, f64::INFINITY).is_err());
    }

    #[test]
    fn valuator_staleness() {
        let mut l = Ledger::new();
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), 10).unwrap();
        l.fund_client(t, c).unwrap();
        let v = Valuator::new(&l);
        assert!(!v.is_stale());
        l.activate_client(c).unwrap();
        let v2 = Valuator::new(&l);
        assert!(!v2.is_stale());
    }

    #[test]
    fn stale_handles_reported() {
        let mut l = Ledger::new();
        let c = l.create_currency("c").unwrap();
        l.destroy_currency(c).unwrap();
        assert!(matches!(
            l.currency(c),
            Err(LotteryError::StaleHandle { .. })
        ));
    }

    #[test]
    fn epoch_advances_on_mutation() {
        let mut l = Ledger::new();
        let e0 = l.epoch();
        let _ = l.create_client("c");
        assert!(l.epoch() > e0);
    }

    #[test]
    fn issue_overflow_rejected() {
        let mut l = Ledger::new();
        let c = l.create_currency("c").unwrap();
        let _ = l.issue_root(c, u64::MAX).unwrap();
        assert_eq!(l.issue_root(c, 1), Err(LotteryError::AmountOverflow));
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    /// Builds Figure 3's graph (as in `figure3_currency_graph`) and returns
    /// (ledger, alice, task2, thread2, thread3, thread4, t_alice).
    fn figure3() -> (
        Ledger,
        CurrencyId,
        CurrencyId,
        ClientId,
        ClientId,
        ClientId,
        TicketId,
    ) {
        let mut l = Ledger::new();
        let base = l.base();
        let alice = l.create_currency("alice").unwrap();
        let bob = l.create_currency("bob").unwrap();
        let t_alice = l.issue_root(base, 1000).unwrap();
        let t_bob = l.issue_root(base, 2000).unwrap();
        l.fund_currency(t_alice, alice).unwrap();
        l.fund_currency(t_bob, bob).unwrap();
        let task2 = l.create_currency("task2").unwrap();
        let task3 = l.create_currency("task3").unwrap();
        let t_task2 = l.issue_root(alice, 200).unwrap();
        let t_task3 = l.issue_root(bob, 100).unwrap();
        l.fund_currency(t_task2, task2).unwrap();
        l.fund_currency(t_task3, task3).unwrap();
        let thread2 = l.create_client("thread2");
        let thread3 = l.create_client("thread3");
        let thread4 = l.create_client("thread4");
        let f2 = l.issue_root(task2, 200).unwrap();
        let f3 = l.issue_root(task2, 300).unwrap();
        let f4 = l.issue_root(task3, 100).unwrap();
        l.fund_client(f2, thread2).unwrap();
        l.fund_client(f3, thread3).unwrap();
        l.fund_client(f4, thread4).unwrap();
        l.activate_client(thread2).unwrap();
        l.activate_client(thread3).unwrap();
        l.activate_client(thread4).unwrap();
        (l, alice, task2, thread2, thread3, thread4, t_alice)
    }

    /// Fresh-Valuator oracle for a client's value.
    fn oracle(l: &Ledger, c: ClientId) -> f64 {
        let mut v = Valuator::new(l);
        v.client_value(c).unwrap()
    }

    #[test]
    fn cached_values_match_valuator() {
        let (l, alice, _, t2, t3, t4, _) = figure3();
        assert_eq!(l.cached_client_value(t2).unwrap(), 400.0);
        assert_eq!(l.cached_client_value(t3).unwrap(), 600.0);
        assert_eq!(l.cached_client_value(t4).unwrap(), 2000.0);
        assert_eq!(l.cached_currency_value(alice).unwrap(), 1000.0);
        // Warm re-reads agree bitwise with a fresh walk.
        for c in [t2, t3, t4] {
            assert_eq!(l.cached_client_value(c).unwrap(), oracle(&l, c));
        }
    }

    #[test]
    fn inflation_invalidates_only_affected_subgraph() {
        let (mut l, _, _, t2, t3, t4, t_alice) = figure3();
        for c in [t2, t3, t4] {
            let _ = l.cached_client_value(c).unwrap();
        }
        let _ = l.drain_dirty_clients();
        // Inflate the backing of alice: thread2/thread3 change; thread4
        // (under bob) must not be disturbed.
        l.set_amount(t_alice, 2000).unwrap();
        let mut dirty = l.drain_dirty_clients();
        dirty.sort();
        let mut expected = vec![t2, t3];
        expected.sort();
        assert_eq!(dirty, expected);
        assert_eq!(l.cached_client_value(t2).unwrap(), 800.0);
        assert_eq!(l.cached_client_value(t3).unwrap(), 1200.0);
        assert_eq!(l.cached_client_value(t4).unwrap(), 2000.0);
    }

    #[test]
    fn activation_cascade_invalidates_shared_siblings() {
        let (mut l, _, _, t2, t3, t4, _) = figure3();
        for c in [t2, t3, t4] {
            let _ = l.cached_client_value(c).unwrap();
        }
        let _ = l.drain_dirty_clients();
        // Blocking thread2 frees its 200-ticket share of task2 for
        // thread3; bob's side is untouched.
        l.deactivate_client(t2).unwrap();
        let dirty = l.drain_dirty_clients();
        assert!(dirty.contains(&t2));
        assert!(dirty.contains(&t3));
        assert!(!dirty.contains(&t4));
        assert_eq!(l.cached_client_value(t2).unwrap(), 0.0);
        assert_eq!(l.cached_client_value(t3).unwrap(), 1000.0);
        assert_eq!(l.cached_client_value(t3).unwrap(), oracle(&l, t3));
    }

    #[test]
    fn compensation_invalidates_client_only() {
        let (mut l, _, _, t2, t3, _, _) = figure3();
        let _ = l.cached_client_value(t2).unwrap();
        let _ = l.cached_client_value(t3).unwrap();
        let _ = l.drain_dirty_clients();
        l.set_compensation(t2, 5.0).unwrap();
        assert_eq!(l.drain_dirty_clients(), vec![t2]);
        assert_eq!(l.cached_client_value(t2).unwrap(), 2000.0);
        // Clearing an already-clear factor is invisible to the cache.
        l.set_compensation(t3, 1.0).unwrap();
        assert!(l.drain_dirty_clients().is_empty());
    }

    #[test]
    fn base_funded_client_sees_amount_changes() {
        // A base-denominated funding ticket never reads the base
        // currency's cached value, so the target itself must be marked.
        let mut l = Ledger::new();
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), 100).unwrap();
        l.fund_client(t, c).unwrap();
        l.activate_client(c).unwrap();
        assert_eq!(l.cached_client_value(c).unwrap(), 100.0);
        l.set_amount(t, 250).unwrap();
        assert_eq!(l.cached_client_value(c).unwrap(), 250.0);
    }

    #[test]
    fn activation_reaches_target_valued_while_ticket_was_inactive() {
        // Value a currency while its backing ticket is inactive, then
        // activate: the cached value must be invalidated even though the
        // (uncached) denomination short-circuits the walk.
        let mut l = Ledger::new();
        let cur = l.create_currency("cur").unwrap();
        let back = l.issue_root(l.base(), 500).unwrap();
        l.fund_currency(back, cur).unwrap();
        let c = l.create_client("c");
        let t = l.issue_root(cur, 10).unwrap();
        l.fund_client(t, c).unwrap();
        assert_eq!(l.cached_client_value(c).unwrap(), 0.0);
        assert_eq!(l.cached_currency_value(cur).unwrap(), 0.0);
        l.activate_client(c).unwrap();
        assert_eq!(l.cached_client_value(c).unwrap(), 500.0);
        assert_eq!(l.cached_currency_value(cur).unwrap(), 500.0);
    }

    #[test]
    fn destroyed_client_never_surfaces_dirty() {
        let mut l = Ledger::new();
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), 10).unwrap();
        l.fund_client(t, c).unwrap();
        l.activate_client(c).unwrap();
        let _ = l.cached_client_value(c).unwrap();
        let _ = l.drain_dirty_clients();
        l.destroy_client_and_funding(c).unwrap();
        assert!(!l.drain_dirty_clients().contains(&c));
    }

    #[test]
    fn funding_moves_invalidate_both_clients() {
        let mut l = Ledger::new();
        let a = l.create_client("a");
        let b = l.create_client("b");
        let t = l.issue_root(l.base(), 10).unwrap();
        l.fund_client(t, a).unwrap();
        l.activate_client(a).unwrap();
        l.activate_client(b).unwrap();
        assert_eq!(l.cached_client_value(a).unwrap(), 10.0);
        assert_eq!(l.cached_client_value(b).unwrap(), 0.0);
        l.fund_client(t, b).unwrap();
        assert_eq!(l.cached_client_value(a).unwrap(), 0.0);
        assert_eq!(l.cached_client_value(b).unwrap(), 10.0);
    }

    #[test]
    fn sharded_dirty_routes_to_home_shard() {
        let (mut l, _, _, t2, t3, t4, t_alice) = figure3();
        l.set_dirty_shards(2);
        l.assign_dirty_shard(t2, 0);
        l.assign_dirty_shard(t3, 0);
        l.assign_dirty_shard(t4, 1);
        for c in [t2, t3, t4] {
            let _ = l.cached_client_value(c).unwrap();
        }
        let _ = l.drain_dirty_clients();
        // Inflating alice's backing dirties thread2/thread3 only; both
        // live on shard 0, so shard 1 stays quiet.
        l.set_amount(t_alice, 2000).unwrap();
        assert_eq!(l.dirty_shard_depth(0), 2);
        assert_eq!(l.dirty_shard_depth(1), 0);
        let mut shard0 = l.drain_dirty_shard(0);
        shard0.sort();
        let mut expected = vec![t2, t3];
        expected.sort();
        assert_eq!(shard0, expected);
        assert!(l.drain_dirty_shard(1).is_empty());
    }

    #[test]
    fn shard_assignment_migrates_pending_notification() {
        let mut l = Ledger::new();
        l.set_dirty_shards(4);
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), 10).unwrap();
        l.fund_client(t, c).unwrap();
        l.assign_dirty_shard(c, 1);
        l.activate_client(c).unwrap();
        let _ = l.cached_client_value(c).unwrap();
        l.set_amount(t, 20).unwrap();
        assert_eq!(l.dirty_shard_depth(1), 1);
        // Migration carries the pending notification to the new owner.
        l.assign_dirty_shard(c, 3);
        assert_eq!(l.dirty_shard_of(c), 3);
        assert_eq!(l.dirty_shard_depth(1), 0);
        assert_eq!(l.drain_dirty_shard(3), vec![c]);
        assert_eq!(l.dirty_shard_reassignments(), 1);
        // Re-assigning to the same shard is not a reassignment.
        l.assign_dirty_shard(c, 3);
        assert_eq!(l.dirty_shard_reassignments(), 1);
    }

    #[test]
    fn destroyed_client_purged_from_shards() {
        let mut l = Ledger::new();
        l.set_dirty_shards(2);
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), 10).unwrap();
        l.fund_client(t, c).unwrap();
        l.assign_dirty_shard(c, 1);
        l.activate_client(c).unwrap();
        let _ = l.cached_client_value(c).unwrap();
        l.set_amount(t, 30).unwrap();
        assert_eq!(l.dirty_shard_depth(1), 1);
        l.destroy_client_and_funding(c).unwrap();
        assert_eq!(l.dirty_shard_depth(1), 0);
        assert!(l.drain_dirty_shard(1).is_empty());
    }

    #[test]
    fn resizing_shards_preserves_pending() {
        let mut l = Ledger::new();
        l.set_dirty_shards(4);
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), 10).unwrap();
        l.fund_client(t, c).unwrap();
        l.assign_dirty_shard(c, 3);
        l.activate_client(c).unwrap();
        let _ = l.cached_client_value(c).unwrap();
        l.set_amount(t, 40).unwrap();
        // Shrinking clamps the owner into range without losing the
        // notification; the unsharded drain still sees everything.
        l.set_dirty_shards(2);
        assert_eq!(l.dirty_shard_of(c), 1);
        assert_eq!(l.drain_dirty_clients(), vec![c]);
    }

    #[test]
    fn warm_reads_do_not_rewalk_the_graph() {
        let (l, _, _, t2, _, _, _) = figure3();
        let _ = l.cached_client_value(t2).unwrap();
        let entries = l.cached_currency_entries();
        assert!(entries >= 2, "alice and task2 memoized");
        let _ = l.cached_client_value(t2).unwrap();
        assert_eq!(l.cached_currency_entries(), entries);
    }
}

#[cfg(test)]
mod split_merge_tests {
    use super::*;

    fn funded_client(l: &mut Ledger, amount: u64) -> (ClientId, TicketId) {
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), amount).unwrap();
        l.fund_client(t, c).unwrap();
        l.activate_client(c).unwrap();
        (c, t)
    }

    #[test]
    fn split_preserves_value_and_activation() {
        let mut l = Ledger::new();
        let (c, t) = funded_client(&mut l, 100);
        let rest = l.split_ticket(t, &[60, 30, 10]).unwrap();
        assert_eq!(rest.len(), 2);
        assert_eq!(l.ticket(t).unwrap().amount(), 60);
        assert_eq!(l.client(c).unwrap().funding().len(), 3);
        for &piece in &rest {
            assert!(l.ticket(piece).unwrap().is_active());
        }
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(c).unwrap(), 100.0);
        assert_eq!(l.currency(l.base()).unwrap().active_amount(), 100);
    }

    #[test]
    fn split_rejects_bad_parts() {
        let mut l = Ledger::new();
        let (_, t) = funded_client(&mut l, 100);
        assert_eq!(l.split_ticket(t, &[]), Err(LotteryError::ZeroAmount));
        assert_eq!(
            l.split_ticket(t, &[50, 0, 50]),
            Err(LotteryError::ZeroAmount)
        );
        assert_eq!(l.split_ticket(t, &[50, 40]), Err(LotteryError::ZeroAmount));
        // Untouched on failure.
        assert_eq!(l.ticket(t).unwrap().amount(), 100);
    }

    #[test]
    fn split_unfunded_ticket_yields_unfunded_pieces() {
        let mut l = Ledger::new();
        let t = l.issue_root(l.base(), 10).unwrap();
        let rest = l.split_ticket(t, &[4, 6]).unwrap();
        assert_eq!(l.ticket(rest[0]).unwrap().target(), FundingTarget::Unfunded);
        assert_eq!(l.currency(l.base()).unwrap().total_amount(), 10);
    }

    #[test]
    fn merge_recombines() {
        let mut l = Ledger::new();
        let (c, t) = funded_client(&mut l, 100);
        let rest = l.split_ticket(t, &[70, 30]).unwrap();
        l.merge_tickets(t, rest[0]).unwrap();
        assert_eq!(l.ticket(t).unwrap().amount(), 100);
        assert!(l.ticket(rest[0]).is_err(), "merged ticket destroyed");
        assert_eq!(l.client(c).unwrap().funding().len(), 1);
        let mut v = Valuator::new(&l);
        assert_eq!(v.client_value(c).unwrap(), 100.0);
    }

    #[test]
    fn merge_rejects_mismatches() {
        let mut l = Ledger::new();
        let (_, t1) = funded_client(&mut l, 10);
        let other_cur = l.create_currency("other").unwrap();
        let t2 = l.issue_root(other_cur, 10).unwrap();
        assert_eq!(l.merge_tickets(t1, t2), Err(LotteryError::NotTransferred));
        assert_eq!(l.merge_tickets(t1, t1), Err(LotteryError::ZeroAmount));
        // Same denomination, different targets.
        let c2 = l.create_client("c2");
        let t3 = l.issue_root(l.base(), 5).unwrap();
        l.fund_client(t3, c2).unwrap();
        assert_eq!(l.merge_tickets(t1, t3), Err(LotteryError::NotTransferred));
    }
}

#[cfg(test)]
mod comp_ledger_tests {
    use super::*;

    /// A client funded by `amount` base units, activated.
    fn active_client(l: &mut Ledger, amount: u64) -> ClientId {
        let c = l.create_client("c");
        let t = l.issue_root(l.base(), amount).unwrap();
        l.fund_client(t, c).unwrap();
        l.activate_client(c).unwrap();
        c
    }

    #[test]
    fn grant_records_extra_on_home_shard() {
        let mut l = Ledger::new();
        let c = active_client(&mut l, 400);
        l.set_compensation(c, 2.5).unwrap();
        // Implicit compensation ticket worth (2.5 - 1) * 400 = 600.
        assert_eq!(l.compensation_factor(c), 2.5);
        assert_eq!(l.compensation_shard_weight(0), 600.0);
        assert_eq!(l.compensation_total_weight(), 600.0);
        assert_eq!(l.compensation_resting_weight(0), 0.0, "client is active");
        assert_eq!(l.compensated_clients(), 1);
        assert_eq!(l.compensations_granted(), 1);
    }

    #[test]
    fn clear_revokes_and_empties() {
        let mut l = Ledger::new();
        let c = active_client(&mut l, 400);
        l.set_compensation(c, 2.0).unwrap();
        l.set_compensation(c, 1.0).unwrap();
        assert_eq!(l.compensation_factor(c), 1.0);
        assert_eq!(l.compensation_shard_weight(0), 0.0);
        assert_eq!(l.compensated_clients(), 0);
        assert_eq!(l.compensations_revoked(), 1);
        // Clearing an already-clear client is a no-op, not a revocation.
        l.set_compensation(c, 1.0).unwrap();
        assert_eq!(l.compensations_revoked(), 1);
    }

    #[test]
    fn deactivation_moves_weight_to_resting() {
        let mut l = Ledger::new();
        let c = active_client(&mut l, 100);
        l.set_compensation(c, 4.0).unwrap();
        assert_eq!(l.compensation_resting_weight(0), 0.0);
        l.deactivate_client(c).unwrap();
        // Blocked: the tree sees 0, but factor * funded = 400 returns on
        // wake; extra (300) still counts toward the shard's comp weight.
        assert_eq!(l.compensation_shard_weight(0), 300.0);
        assert_eq!(l.compensation_resting_weight(0), 400.0);
        l.activate_client(c).unwrap();
        assert_eq!(l.compensation_resting_weight(0), 0.0);
        assert_eq!(l.compensation_shard_weight(0), 300.0);
    }

    #[test]
    fn migration_rehomes_compensated_weight() {
        let mut l = Ledger::new();
        l.set_dirty_shards(4);
        let c = active_client(&mut l, 200);
        l.set_compensation(c, 3.0).unwrap();
        assert_eq!(l.compensation_shard_weight(0), 400.0);
        l.assign_dirty_shard(c, 2);
        assert_eq!(l.compensation_shard_weight(0), 0.0);
        assert_eq!(l.compensation_shard_weight(2), 400.0);
        assert_eq!(l.compensation_total_weight(), 400.0, "nothing lost");
        // Resizing the shard space preserves the total (out-of-range homes
        // clamp into the new range).
        l.set_dirty_shards(2);
        let per_shard: f64 = (0..2).map(|s| l.compensation_shard_weight(s)).sum();
        assert_eq!(per_shard, l.compensation_total_weight());
    }

    #[test]
    fn inactive_grant_snapshots_on_next_valuation() {
        let mut l = Ledger::new();
        let c = l.create_client("io");
        let t = l.issue_root(l.base(), 100).unwrap();
        l.fund_client(t, c).unwrap();
        // Granted while inactive: funded value unknown (0) until revalued.
        l.set_compensation(c, 4.0).unwrap();
        assert_eq!(l.compensation_shard_weight(0), 0.0);
        l.activate_client(c).unwrap();
        assert_eq!(l.cached_client_value(c).unwrap(), 400.0);
        assert_eq!(l.compensation_shard_weight(0), 300.0);
        assert_eq!(l.compensation_resting_weight(0), 0.0);
    }

    #[test]
    fn destroy_forgets_without_revocation() {
        let mut l = Ledger::new();
        let c = active_client(&mut l, 50);
        l.set_compensation(c, 2.0).unwrap();
        l.deactivate_client(c).unwrap();
        l.destroy_client_and_funding(c).unwrap();
        assert_eq!(l.compensation_shard_weight(0), 0.0);
        assert_eq!(l.compensation_resting_weight(0), 0.0);
        assert_eq!(l.compensated_clients(), 0);
        assert_eq!(l.compensations_revoked(), 0);
    }
}
