//! The lottery-scheduled mutex object, against a ledger (Section 6.1).
//!
//! A lottery-scheduled mutex has an associated *mutex currency* and an
//! *inheritance ticket* issued in that currency:
//!
//! * every thread blocked on the mutex funds the mutex currency with a
//!   ticket transfer denominated in its own currency;
//! * the mutex transfers its inheritance ticket to the current holder, so
//!   the holder executes with its own funding **plus** the funding of all
//!   waiters — solving priority inversion exactly as priority inheritance
//!   does;
//! * on release, the mutex holds a lottery among the waiting threads,
//!   weighted by their transferred funding, to pick the next owner.
//!
//! [`TicketMutex`] implements this object against a
//! [`crate::ledger::Ledger`]. The `lottery-sync` crate drives the Figure
//! 10/11 scenarios with it (standalone), and
//! `lottery-sim`'s lottery policy exposes it as an in-kernel mutex so lock
//! scheduling and CPU scheduling interact as they did in the paper's
//! CThreads prototype.

use crate::client::ClientId;
use crate::currency::CurrencyId;
use crate::errors::{LotteryError, Result};
use crate::ledger::{Ledger, Valuator};
use crate::rng::SchedRng;
use crate::ticket::TicketId;
use crate::transfer::{lend, Transfer, TransferTarget};

/// The funding a waiter transfers while blocked.
#[derive(Debug, Clone, Copy)]
pub struct WaiterFunding {
    /// The currency the waiter's transfer is denominated in (its own task
    /// or group currency).
    pub currency: CurrencyId,
    /// The transfer amount in that currency.
    pub amount: u64,
}

struct Waiter {
    client: ClientId,
    transfer: Transfer,
}

/// A lottery-scheduled mutex bound to a ledger.
pub struct TicketMutex {
    currency: CurrencyId,
    inheritance: TicketId,
    holder: Option<ClientId>,
    waiters: Vec<Waiter>,
}

impl TicketMutex {
    /// Creates an unheld mutex, allocating its currency and inheritance
    /// ticket in `ledger`.
    pub fn new(ledger: &mut Ledger, name: &str) -> Result<Self> {
        let currency = ledger.create_currency(format!("mutex:{name}"))?;
        let inheritance = ledger.issue_root(currency, 1)?;
        Ok(Self {
            currency,
            inheritance,
            holder: None,
            waiters: Vec::new(),
        })
    }

    /// The mutex currency.
    pub fn currency(&self) -> CurrencyId {
        self.currency
    }

    /// The inheritance ticket.
    pub fn inheritance(&self) -> TicketId {
        self.inheritance
    }

    /// The current owner.
    pub fn holder(&self) -> Option<ClientId> {
        self.holder
    }

    /// Number of blocked waiters.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Whether `client` is among the blocked waiters.
    pub fn is_waiting(&self, client: ClientId) -> bool {
        self.waiters.iter().any(|w| w.client == client)
    }

    /// Attempts to acquire for `client`.
    ///
    /// Returns `true` when the mutex was free — the client now holds it and
    /// receives the inheritance ticket. Otherwise the client joins the
    /// waiter list, transferring `funding` to the mutex currency, and the
    /// caller must treat it as blocked until [`TicketMutex::release`]
    /// hands it the mutex.
    pub fn acquire(
        &mut self,
        ledger: &mut Ledger,
        client: ClientId,
        funding: WaiterFunding,
    ) -> Result<bool> {
        if self.holder.is_none() {
            debug_assert!(self.waiters.is_empty());
            self.holder = Some(client);
            ledger.fund_client(self.inheritance, client)?;
            return Ok(true);
        }
        if self.holder == Some(client) || self.is_waiting(client) {
            // Re-acquisition is a protocol error in this non-recursive
            // mutex; surface it rather than deadlock silently.
            return Err(LotteryError::ClientInUse);
        }
        let transfer = lend(
            ledger,
            funding.currency,
            funding.amount,
            TransferTarget::Currency(self.currency),
        )?;
        self.waiters.push(Waiter { client, transfer });
        Ok(false)
    }

    /// Removes `client` from the waiter list (e.g. its thread was killed),
    /// repaying its transfer.
    ///
    /// Returns `true` when the client was waiting. The holder cannot be
    /// cancelled — release it instead.
    pub fn cancel(&mut self, ledger: &mut Ledger, client: ClientId) -> Result<bool> {
        let Some(pos) = self.waiters.iter().position(|w| w.client == client) else {
            return Ok(false);
        };
        let waiter = self.waiters.remove(pos);
        waiter.transfer.repay(ledger)?;
        Ok(true)
    }

    /// Releases the mutex held by `client` and, when threads are waiting,
    /// holds a lottery to pick the next owner.
    ///
    /// Returns the new owner (its transfer is repaid and the inheritance
    /// ticket moves to it), or `None` when no one was waiting.
    ///
    /// # Errors
    ///
    /// [`LotteryError::NotTransferred`] when `client` is not the holder.
    pub fn release<R: SchedRng + ?Sized>(
        &mut self,
        ledger: &mut Ledger,
        client: ClientId,
        rng: &mut R,
    ) -> Result<Option<ClientId>> {
        if self.holder != Some(client) {
            return Err(LotteryError::NotTransferred);
        }
        if self.waiters.is_empty() {
            ledger.unfund(self.inheritance)?;
            self.holder = None;
            return Ok(None);
        }

        // Weigh each waiter by the base-unit value of its transferred
        // funding *before* unfunding the inheritance ticket — pulling the
        // inheritance deactivates the mutex currency and would zero every
        // transfer's value. The transfers fund the mutex currency, so they
        // are active as long as the currency is; value them directly.
        let mut valuator = Valuator::new(ledger);
        let weights: Vec<f64> = self
            .waiters
            .iter()
            .map(|w| valuator.ticket_value(w.transfer.ticket()).unwrap_or(0.0))
            .collect();
        let total: f64 = weights.iter().sum();
        let index = if total <= 0.0 {
            // All transfers currently value to zero (e.g. the waiters'
            // group currencies are inactive): fall back to FIFO.
            0
        } else {
            let winning = rng.next_f64() * total;
            let mut sum = 0.0;
            let mut chosen = self.waiters.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                sum += w;
                if winning < sum {
                    chosen = i;
                    break;
                }
            }
            chosen
        };

        let winner = self.waiters.remove(index);
        ledger.unfund(self.inheritance)?;
        winner.transfer.repay(ledger)?;
        self.holder = Some(winner.client);
        ledger.fund_client(self.inheritance, winner.client)?;
        Ok(Some(winner.client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::ParkMiller;

    struct Fixture {
        ledger: Ledger,
        mutex: TicketMutex,
        clients: Vec<ClientId>,
        group: CurrencyId,
    }

    /// Builds `n` active clients funded 100 each from a group currency
    /// worth 1000 base.
    fn fixture(n: usize) -> Fixture {
        let mut ledger = Ledger::new();
        let group = ledger.create_currency("group").unwrap();
        let backing = ledger.issue_root(ledger.base(), 1000).unwrap();
        ledger.fund_currency(backing, group).unwrap();
        let mut clients = Vec::new();
        for i in 0..n {
            let c = ledger.create_client(format!("t{i}"));
            let t = ledger.issue_root(group, 100).unwrap();
            ledger.fund_client(t, c).unwrap();
            ledger.activate_client(c).unwrap();
            clients.push(c);
        }
        let mutex = TicketMutex::new(&mut ledger, "m").unwrap();
        Fixture {
            ledger,
            mutex,
            clients,
            group,
        }
    }

    fn funding(f: &Fixture) -> WaiterFunding {
        WaiterFunding {
            currency: f.group,
            amount: 100,
        }
    }

    #[test]
    fn uncontended_acquire_release() {
        let mut f = fixture(1);
        let c = f.clients[0];
        let wf = funding(&f);
        assert!(f.mutex.acquire(&mut f.ledger, c, wf).unwrap());
        assert_eq!(f.mutex.holder(), Some(c));
        let mut rng = ParkMiller::new(1);
        assert_eq!(f.mutex.release(&mut f.ledger, c, &mut rng).unwrap(), None);
        assert_eq!(f.mutex.holder(), None);
    }

    /// Figure 10's funding structure: the holder is funded by the
    /// inheritance ticket, which is backed by every waiter's transfer.
    #[test]
    fn figure10_funding() {
        let mut f = fixture(3);
        let (a, b, c) = (f.clients[0], f.clients[1], f.clients[2]);
        let wf = funding(&f);
        assert!(f.mutex.acquire(&mut f.ledger, a, wf).unwrap());
        assert!(!f.mutex.acquire(&mut f.ledger, b, wf).unwrap());
        assert!(!f.mutex.acquire(&mut f.ledger, c, wf).unwrap());
        // Waiters are blocked: their own funding is inactive.
        f.ledger.deactivate_client(b).unwrap();
        f.ledger.deactivate_client(c).unwrap();

        // Group currency is worth 1000 base, with active claims from a
        // (100) and the two transfers (100 each): a's own share is 1000/3,
        // and the lock currency holds the waiters' 2000/3.
        let mut v = Valuator::new(&f.ledger);
        let lock_value = v.currency_value(f.mutex.currency()).unwrap();
        assert!((lock_value - 2000.0 / 3.0).abs() < 1e-9, "{lock_value}");
        // The holder's total: own ticket + inheritance = 1000/3 + 2000/3.
        let holder_value = v.client_value(a).unwrap();
        assert!((holder_value - 1000.0).abs() < 1e-9, "{holder_value}");
        assert_eq!(f.mutex.waiting(), 2);
    }

    #[test]
    fn release_hands_off_to_a_waiter() {
        let mut f = fixture(2);
        let (a, b) = (f.clients[0], f.clients[1]);
        let wf = funding(&f);
        assert!(f.mutex.acquire(&mut f.ledger, a, wf).unwrap());
        assert!(!f.mutex.acquire(&mut f.ledger, b, wf).unwrap());
        let mut rng = ParkMiller::new(3);
        let next = f.mutex.release(&mut f.ledger, a, &mut rng).unwrap();
        assert_eq!(next, Some(b));
        assert_eq!(f.mutex.holder(), Some(b));
        assert_eq!(f.mutex.waiting(), 0);
        // The transfer was repaid: only the inheritance ticket remains
        // issued in the lock currency.
        assert!(f
            .ledger
            .currency(f.mutex.currency())
            .unwrap()
            .backing()
            .is_empty());
    }

    #[test]
    fn double_acquire_rejected() {
        let mut f = fixture(2);
        let a = f.clients[0];
        let wf = funding(&f);
        assert!(f.mutex.acquire(&mut f.ledger, a, wf).unwrap());
        assert!(f.mutex.acquire(&mut f.ledger, a, wf).is_err());
        let b = f.clients[1];
        assert!(!f.mutex.acquire(&mut f.ledger, b, wf).unwrap());
        assert!(f.mutex.acquire(&mut f.ledger, b, wf).is_err());
    }

    #[test]
    fn release_by_non_holder_rejected() {
        let mut f = fixture(2);
        let (a, b) = (f.clients[0], f.clients[1]);
        let wf = funding(&f);
        assert!(f.mutex.acquire(&mut f.ledger, a, wf).unwrap());
        let mut rng = ParkMiller::new(3);
        assert_eq!(
            f.mutex.release(&mut f.ledger, b, &mut rng),
            Err(LotteryError::NotTransferred)
        );
    }

    #[test]
    fn handoff_is_weighted_by_funding() {
        // One waiter with 3x the transfer funding should win the handoff
        // lottery about 75% of the time.
        let mut wins_heavy = 0u32;
        let trials = 4000;
        let mut rng = ParkMiller::new(77);
        for _ in 0..trials {
            let mut ledger = Ledger::new();
            let heavy = ledger.create_client("heavy");
            let light = ledger.create_client("light");
            let holder = ledger.create_client("holder");
            for (c, amt) in [(heavy, 300u64), (light, 100), (holder, 100)] {
                let t = ledger.issue_root(ledger.base(), amt).unwrap();
                ledger.fund_client(t, c).unwrap();
                ledger.activate_client(c).unwrap();
            }
            let mut mutex = TicketMutex::new(&mut ledger, "m").unwrap();
            let base = ledger.base();
            assert!(mutex
                .acquire(
                    &mut ledger,
                    holder,
                    WaiterFunding {
                        currency: base,
                        amount: 100
                    }
                )
                .unwrap());
            mutex
                .acquire(
                    &mut ledger,
                    heavy,
                    WaiterFunding {
                        currency: base,
                        amount: 300,
                    },
                )
                .unwrap();
            mutex
                .acquire(
                    &mut ledger,
                    light,
                    WaiterFunding {
                        currency: base,
                        amount: 100,
                    },
                )
                .unwrap();
            let next = mutex.release(&mut ledger, holder, &mut rng).unwrap();
            if next == Some(heavy) {
                wins_heavy += 1;
            }
        }
        let share = f64::from(wins_heavy) / f64::from(trials);
        assert!((share - 0.75).abs() < 0.03, "heavy won {share}");
    }
}
