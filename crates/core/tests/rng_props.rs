//! Property tests on the Park–Miller generator.

use lottery_core::rng::{ParkMiller, SchedRng, SplitMix64, PM_MODULUS};
use lottery_stats::dist;
use proptest::prelude::*;

proptest! {
    /// Every draw lies in `[0, 2^31 - 2]` and the state stays in the
    /// multiplicative group, from any seed.
    #[test]
    fn draws_stay_in_range(seed in 0u32..u32::MAX) {
        let mut rng = ParkMiller::new(seed);
        for _ in 0..256 {
            let x = rng.next_u31();
            prop_assert!(x < PM_MODULUS - 1);
            prop_assert!((1..PM_MODULUS).contains(&rng.state()));
        }
    }

    /// `below(bound)` respects its bound for arbitrary bounds.
    #[test]
    fn below_respects_arbitrary_bounds(seed in 1u32..u32::MAX, bound in 1u64..(1 << 62)) {
        let mut rng = ParkMiller::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// The Carta fold agrees with direct 64-bit modular arithmetic from
    /// any starting seed.
    #[test]
    fn carta_matches_reference(seed in 1u32..PM_MODULUS) {
        let mut rng = ParkMiller::new(seed);
        let mut direct = u64::from(seed);
        for _ in 0..512 {
            direct = direct * 16807 % u64::from(PM_MODULUS);
            prop_assert_eq!(u64::from(rng.next_u31() + 1), direct);
        }
    }

    /// No short cycles: the sequence from a random seed does not return
    /// to its start within 10,000 steps (the full period is 2^31 - 2).
    #[test]
    fn no_short_cycles(seed in 1u32..PM_MODULUS) {
        let mut rng = ParkMiller::new(seed);
        let start = rng.state();
        for _ in 0..10_000 {
            rng.next_u31();
            prop_assert_ne!(rng.state(), start);
        }
    }

    /// Bounded draws are uniform at the 0.999 chi-square level for random
    /// small bounds.
    ///
    /// Across hundreds of proptest cases a single 0.999-level check is
    /// *expected* to fail now and then; a genuine bias fails persistently.
    /// So a failing sample is retried on the continuation of the stream —
    /// two consecutive 0.999 exceedances happen with probability ~1e-6
    /// per case for an unbiased generator.
    #[test]
    fn below_is_uniform(seed in 1u32..10_000, bound in 2u64..30) {
        let mut rng = ParkMiller::new(seed);
        let n = 30_000u64;
        let sample = |rng: &mut ParkMiller| -> f64 {
            let mut counts = vec![0u64; bound as usize];
            for _ in 0..n {
                counts[rng.below(bound) as usize] += 1;
            }
            let expected = vec![n as f64 / bound as f64; bound as usize];
            dist::chi_square(&counts, &expected)
        };
        let first = sample(&mut rng);
        if !dist::chi_square_ok(first, bound as usize - 1) {
            let second = sample(&mut rng);
            prop_assert!(
                dist::chi_square_ok(second, bound as usize - 1),
                "chi2 {} then {} for bound {}",
                first,
                second,
                bound
            );
        }
    }

    /// SplitMix-derived Park–Miller streams are valid and distinct.
    #[test]
    fn derived_streams_are_valid(seed in 0u64..u64::MAX) {
        let mut sm = SplitMix64::new(seed);
        let mut a = sm.park_miller();
        let mut b = sm.park_miller();
        let va: Vec<u32> = (0..16).map(|_| a.next_u31()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u31()).collect();
        prop_assert_ne!(va, vb);
    }
}
