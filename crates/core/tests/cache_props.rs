//! Property-based coherence tests for the ledger's incremental valuation
//! cache.
//!
//! Two contracts are exercised against random mutation sequences over
//! random currency graphs, with cache reads interleaved so entries are
//! warm when mutations land:
//!
//! 1. **Cache coherence** — [`Ledger::cached_client_value`] and
//!    [`Ledger::cached_currency_value`] always bit-equal a fresh
//!    [`Valuator`] over the same ledger. The cache may only ever skip
//!    *recomputation*, never return a different value.
//! 2. **Notification completeness** — a mirror of client values that is
//!    refreshed *only* for clients surfaced by
//!    [`Ledger::drain_dirty_clients`] (re-warming each refreshed entry,
//!    exactly as the tree scheduler does) never goes stale. Every value
//!    change of a warm client must be signalled.

use lottery_core::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::HashMap;

/// `lottery_core::prelude` exports its own single-parameter `Result`.
type CheckResult = std::result::Result<(), TestCaseError>;

#[derive(Debug, Clone)]
enum Op {
    CreateCurrency,
    CreateClient,
    /// Issue a ticket in currency `c % |currencies|`, amount 1..=500,
    /// funding client `cl % |clients|`.
    FundClient {
        c: usize,
        amount: u64,
        cl: usize,
    },
    /// Issue a ticket in currency `c` funding currency `d` (cycle and
    /// base-funding attempts are expected to fail cleanly).
    FundCurrency {
        c: usize,
        d: usize,
        amount: u64,
    },
    Activate {
        cl: usize,
    },
    Deactivate {
        cl: usize,
    },
    DestroyTicket {
        t: usize,
    },
    SetAmount {
        t: usize,
        amount: u64,
    },
    Unfund {
        t: usize,
    },
    /// Split ticket `t` into two parts, the first `num/8` of its amount.
    Split {
        t: usize,
        num: u64,
    },
    Merge {
        a: usize,
        b: usize,
    },
    /// Compensation factor `1.0 + 0.5 * k`.
    SetCompensation {
        cl: usize,
        k: u64,
    },
    DestroyClient {
        cl: usize,
    },
    /// Warm a random client's cache entry mid-sequence.
    ReadClient {
        cl: usize,
    },
    /// Warm a random currency's cache entry mid-sequence.
    ReadCurrency {
        c: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::CreateCurrency),
        Just(Op::CreateClient),
        (0..8usize, 1..500u64, 0..8usize).prop_map(|(c, amount, cl)| Op::FundClient {
            c,
            amount,
            cl
        }),
        (0..8usize, 0..8usize, 1..500u64).prop_map(|(c, d, amount)| Op::FundCurrency {
            c,
            d,
            amount
        }),
        (0..8usize).prop_map(|cl| Op::Activate { cl }),
        (0..8usize).prop_map(|cl| Op::Deactivate { cl }),
        (0..32usize).prop_map(|t| Op::DestroyTicket { t }),
        (0..32usize, 1..500u64).prop_map(|(t, amount)| Op::SetAmount { t, amount }),
        (0..32usize).prop_map(|t| Op::Unfund { t }),
        (0..32usize, 1..8u64).prop_map(|(t, num)| Op::Split { t, num }),
        (0..32usize, 0..32usize).prop_map(|(a, b)| Op::Merge { a, b }),
        (0..8usize, 0..4u64).prop_map(|(cl, k)| Op::SetCompensation { cl, k }),
        (0..8usize).prop_map(|cl| Op::DestroyClient { cl }),
        (0..8usize).prop_map(|cl| Op::ReadClient { cl }),
        (0..8usize).prop_map(|c| Op::ReadCurrency { c }),
    ]
}

struct World {
    ledger: Ledger,
    currencies: Vec<CurrencyId>,
    clients: Vec<ClientId>,
    tickets: Vec<TicketId>,
    /// Client values as last seen through the dirty-drain protocol.
    mirror: HashMap<ClientId, f64>,
}

impl World {
    fn new() -> Self {
        let ledger = Ledger::new();
        let base = ledger.base();
        Self {
            ledger,
            currencies: vec![base],
            clients: Vec::new(),
            tickets: Vec::new(),
            mirror: HashMap::new(),
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::CreateCurrency => {
                let id = self
                    .ledger
                    .create_currency(format!("c{}", self.currencies.len()))
                    .unwrap();
                self.currencies.push(id);
            }
            Op::CreateClient => {
                let id = self
                    .ledger
                    .create_client(format!("cl{}", self.clients.len()));
                self.clients.push(id);
                // Mirror protocol: warm the entry at creation, like the
                // scheduler does when it first enqueues a thread.
                let v = self.ledger.cached_client_value(id).unwrap();
                self.mirror.insert(id, v);
            }
            Op::FundClient { c, amount, cl } => {
                if self.clients.is_empty() {
                    return;
                }
                let c = self.currencies[c % self.currencies.len()];
                let cl = self.clients[cl % self.clients.len()];
                let t = self.ledger.issue_root(c, amount).unwrap();
                self.ledger.fund_client(t, cl).unwrap();
                self.tickets.push(t);
            }
            Op::FundCurrency { c, d, amount } => {
                let c = self.currencies[c % self.currencies.len()];
                let d = self.currencies[d % self.currencies.len()];
                let t = self.ledger.issue_root(c, amount).unwrap();
                match self.ledger.fund_currency(t, d) {
                    Ok(()) => self.tickets.push(t),
                    Err(LotteryError::CurrencyCycle | LotteryError::BaseCurrencyImmutable) => {
                        self.ledger.destroy_ticket(t).unwrap();
                    }
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            Op::Activate { cl } => {
                if let Some(&cl) = self.clients.get(cl % self.clients.len().max(1)) {
                    self.ledger.activate_client(cl).unwrap();
                }
            }
            Op::Deactivate { cl } => {
                if let Some(&cl) = self.clients.get(cl % self.clients.len().max(1)) {
                    self.ledger.deactivate_client(cl).unwrap();
                }
            }
            Op::DestroyTicket { t } => {
                if self.tickets.is_empty() {
                    return;
                }
                let t = self.tickets.swap_remove(t % self.tickets.len());
                self.ledger.destroy_ticket(t).unwrap();
            }
            Op::SetAmount { t, amount } => {
                if self.tickets.is_empty() {
                    return;
                }
                let t = self.tickets[t % self.tickets.len()];
                self.ledger.set_amount(t, amount).unwrap();
            }
            Op::Unfund { t } => {
                if self.tickets.is_empty() {
                    return;
                }
                let t = self.tickets[t % self.tickets.len()];
                self.ledger.unfund(t).unwrap();
            }
            Op::Split { t, num } => {
                if self.tickets.is_empty() {
                    return;
                }
                let t = self.tickets[t % self.tickets.len()];
                let amount = self.ledger.ticket(t).unwrap().amount();
                let first = (amount * num / 8).max(1);
                if first >= amount {
                    return;
                }
                let rest = self
                    .ledger
                    .split_ticket(t, &[first, amount - first])
                    .unwrap();
                self.tickets.extend(rest);
            }
            Op::Merge { a, b } => {
                if self.tickets.len() < 2 {
                    return;
                }
                let a = self.tickets[a % self.tickets.len()];
                let b = self.tickets[b % self.tickets.len()];
                match self.ledger.merge_tickets(a, b) {
                    Ok(()) => self.tickets.retain(|&t| t != b),
                    Err(LotteryError::NotTransferred | LotteryError::ZeroAmount) => {}
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            Op::SetCompensation { cl, k } => {
                if let Some(&cl) = self.clients.get(cl % self.clients.len().max(1)) {
                    let factor = 1.0 + 0.5 * k as f64;
                    self.ledger.set_compensation(cl, factor).unwrap();
                }
            }
            Op::DestroyClient { cl } => {
                if self.clients.is_empty() {
                    return;
                }
                let cl = self.clients.swap_remove(cl % self.clients.len());
                self.ledger.destroy_client_and_funding(cl).unwrap();
                self.mirror.remove(&cl);
                // Its funding tickets are gone too.
                self.tickets.retain(|&t| self.ledger.ticket(t).is_ok());
            }
            Op::ReadClient { cl } => {
                if let Some(&cl) = self.clients.get(cl % self.clients.len().max(1)) {
                    self.ledger.cached_client_value(cl).unwrap();
                }
            }
            Op::ReadCurrency { c } => {
                let c = self.currencies[c % self.currencies.len()];
                self.ledger.cached_currency_value(c).unwrap();
            }
        }
    }

    /// Contract 1: cached reads bit-equal a fresh valuator.
    fn check_cache_matches_fresh(&self) -> CheckResult {
        let mut fresh = Valuator::new(&self.ledger);
        for &cl in &self.clients {
            let cached = self.ledger.cached_client_value(cl).unwrap();
            let oracle = fresh.client_value(cl).unwrap();
            prop_assert_eq!(cached, oracle, "client {:?}", cl);
        }
        for &c in &self.currencies {
            let cached = self.ledger.cached_currency_value(c).unwrap();
            let oracle = fresh.currency_value(c).unwrap();
            prop_assert_eq!(cached, oracle, "currency {:?}", c);
        }
        Ok(())
    }

    /// Contract 2: refresh the mirror from the dirty queue alone, then
    /// demand it matches fresh values for every live client.
    fn drain_and_check_mirror(&mut self) -> CheckResult {
        for cl in self.ledger.drain_dirty_clients() {
            prop_assert!(
                self.mirror.contains_key(&cl),
                "drained unknown/destroyed client {:?}",
                cl
            );
            // Re-warming here is part of the protocol: only warm entries
            // are guaranteed future notifications.
            let v = self.ledger.cached_client_value(cl).unwrap();
            self.mirror.insert(cl, v);
        }
        let mut fresh = Valuator::new(&self.ledger);
        for &cl in &self.clients {
            let mirrored = self.mirror[&cl];
            let oracle = fresh.client_value(cl).unwrap();
            prop_assert_eq!(mirrored, oracle, "mirror stale for {:?}", cl);
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After an arbitrary mutation sequence, every cached value equals a
    /// fresh recomputation exactly.
    #[test]
    fn cache_matches_fresh_valuator(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut world = World::new();
        for op in &ops {
            world.apply(op);
        }
        world.check_cache_matches_fresh()?;
    }

    /// The cache and the dirty-notification queue stay coherent at every
    /// intermediate step, under the same warm-entry protocol the tree
    /// scheduler uses.
    #[test]
    fn cache_and_dirty_queue_coherent_at_every_step(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut world = World::new();
        for op in &ops {
            world.apply(op);
            world.check_cache_matches_fresh()?;
            world.drain_and_check_mirror()?;
        }
    }
}
