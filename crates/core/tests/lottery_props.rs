//! Property tests on the lottery selection structures.

use lottery_core::lottery::list::ListLottery;
use lottery_core::lottery::tree::TreeLottery;
use lottery_core::lottery::TicketPool;
use lottery_core::rng::{ParkMiller, SchedRng};
use proptest::prelude::*;

/// Random pools: up to 24 entries with weights 0..=1000.
fn pool_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..=1000u64, 1..24)
}

proptest! {
    /// The list walk and the tree descent implement the same function
    /// from winning value to winner.
    #[test]
    fn list_and_tree_agree_on_selection(weights in pool_strategy(), seed in 1u32..1000) {
        let total: u64 = weights.iter().sum();
        prop_assume!(total > 0);
        let mut list: ListLottery<usize, u64> = ListLottery::without_move_to_front();
        let mut tree: TreeLottery<usize, u64> = TreeLottery::new();
        for (i, &w) in weights.iter().enumerate() {
            list.insert(i, w);
            tree.insert(i, w);
        }
        prop_assert_eq!(list.total(), tree.total());
        let mut rng = ParkMiller::new(seed);
        for _ in 0..32 {
            let winning = rng.below(total);
            prop_assert_eq!(list.select(winning), tree.select(winning), "winning {}", winning);
        }
    }

    /// Zero-weight entries never win, in either structure.
    #[test]
    fn zero_weights_never_win(weights in pool_strategy(), seed in 1u32..1000) {
        let total: u64 = weights.iter().sum();
        prop_assume!(total > 0);
        let mut list: ListLottery<usize, u64> = ListLottery::new();
        let mut tree: TreeLottery<usize, u64> = TreeLottery::new();
        for (i, &w) in weights.iter().enumerate() {
            list.insert(i, w);
            tree.insert(i, w);
        }
        let mut rng = ParkMiller::new(seed);
        for _ in 0..64 {
            let li = *list.draw(&mut rng).unwrap();
            prop_assert!(weights[li] > 0, "list picked zero-weight {}", li);
            let ti = *tree.draw(&mut rng).unwrap();
            prop_assert!(weights[ti] > 0, "tree picked zero-weight {}", ti);
        }
    }

    /// Totals stay equal to the sum of live weights through arbitrary
    /// insert/remove/set sequences applied to both structures.
    #[test]
    fn totals_track_mutations(
        ops in prop::collection::vec((0..3u8, 0..16usize, 0..500u64), 1..80)
    ) {
        let mut list: ListLottery<usize, u64> = ListLottery::new();
        let mut tree: TreeLottery<usize, u64> = TreeLottery::new();
        let mut model: std::collections::HashMap<usize, u64> = Default::default();
        for (op, key, w) in ops {
            match op {
                0 => {
                    list.insert(key, w);
                    tree.insert(key, w);
                    model.insert(key, w);
                }
                1 => {
                    let a = list.remove(&key);
                    let b = tree.remove(&key);
                    let m = model.remove(&key);
                    prop_assert_eq!(a, m);
                    prop_assert_eq!(b, m);
                }
                _ => {
                    let a = list.set_weight(&key, w);
                    let b = tree.set_weight(&key, w);
                    let m = model.contains_key(&key);
                    if m {
                        model.insert(key, w);
                    }
                    prop_assert_eq!(a, m);
                    prop_assert_eq!(b, m);
                }
            }
            let expected: u64 = model.values().sum();
            prop_assert_eq!(list.total(), expected);
            prop_assert_eq!(tree.total(), expected);
            prop_assert_eq!(list.len(), model.len());
            prop_assert_eq!(tree.len(), model.len());
        }
    }

    /// Move-to-front only reorders the scan; the winner distribution is
    /// unchanged. Compare empirical shares of the heaviest entry.
    #[test]
    fn move_to_front_preserves_distribution(seed in 1u32..500) {
        let weights = [400u64, 50, 25, 25];
        let mut plain: ListLottery<usize, u64> = ListLottery::without_move_to_front();
        let mut mtf: ListLottery<usize, u64> = ListLottery::new();
        for (i, &w) in weights.iter().enumerate() {
            plain.insert(i, w);
            mtf.insert(i, w);
        }
        let n = 4000;
        let count_heavy = |pool: &mut ListLottery<usize, u64>, seed: u32| {
            let mut rng = ParkMiller::new(seed);
            (0..n).filter(|_| *pool.draw(&mut rng).unwrap() == 0).count() as f64
        };
        let p = count_heavy(&mut plain, seed) / n as f64;
        let m = count_heavy(&mut mtf, seed.wrapping_add(1)) / n as f64;
        // Both estimate 0.8; binomial stddev ≈ 0.0063, so 5 sigma ≈ 0.032.
        prop_assert!((p - 0.8).abs() < 0.035, "plain {}", p);
        prop_assert!((m - 0.8).abs() < 0.035, "mtf {}", m);
    }

    /// f64-weighted pools select consistently with their integer twins
    /// when the weights are integral.
    #[test]
    fn f64_pools_match_integer_pools(weights in pool_strategy()) {
        let total: u64 = weights.iter().sum();
        prop_assume!(total > 0);
        let mut int_pool: ListLottery<usize, u64> = ListLottery::without_move_to_front();
        let mut f64_pool: ListLottery<usize, f64> = ListLottery::without_move_to_front();
        for (i, &w) in weights.iter().enumerate() {
            int_pool.insert(i, w);
            f64_pool.insert(i, w as f64);
        }
        // Probe at interval midpoints: exactly representable and far from
        // boundaries, so float comparison is exact.
        for probe in 0..total.min(64) {
            let w = probe * total / total.min(64);
            let a = int_pool.select(w).copied();
            let b = f64_pool.select(w as f64 + 0.25).copied();
            prop_assert_eq!(a, b, "probe {}", w);
        }
    }
}
