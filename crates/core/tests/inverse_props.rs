//! Property test: inverse-lottery victims follow the paper's formula.
//!
//! Section 6.2 specifies that an inverse lottery revokes a unit from
//! client `i` with probability `P[i] = 1/(n-1) · (1 - t_i/T)`. For random
//! ticket pools this checks both halves of the claim: the closed-form
//! [`loss_probability`] matches the formula exactly, and the empirical
//! victim histogram of [`draw_loser`] matches [`loss_probability`] within
//! a binomial confidence bound (counts are binomial with standard
//! deviation `sqrt(n·p·(1-p))`; five sigma over these case counts makes a
//! false trip vanishingly unlikely).

use lottery_core::inverse::{draw_loser, loss_probability};
use lottery_core::rng::ParkMiller;
use proptest::prelude::*;

fn pools() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..=500u64, 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn loss_probability_matches_closed_form(tickets in pools()) {
        let total: u64 = tickets.iter().sum();
        prop_assume!(total > 0);
        let n = tickets.len() as f64;
        let mut sum = 0.0;
        for (i, &t) in tickets.iter().enumerate() {
            let expected = (1.0 - t as f64 / total as f64) / (n - 1.0);
            let p = loss_probability(&tickets, i);
            prop_assert!((p - expected).abs() < 1e-12, "i={i}: {p} vs {expected}");
            sum += p;
        }
        prop_assert!((sum - 1.0).abs() < 1e-9, "probabilities sum to {sum}");
    }

    #[test]
    fn victim_distribution_matches_formula(tickets in pools(), seed in 1u32..1_000_000) {
        let total: u64 = tickets.iter().sum();
        prop_assume!(total > 0);
        let entries: Vec<(usize, u64)> = tickets.iter().copied().enumerate().collect();
        let mut rng = ParkMiller::new(seed);
        let draws = 4_000u64;
        let mut counts = vec![0u64; tickets.len()];
        for _ in 0..draws {
            counts[draw_loser(&entries, &mut rng).unwrap()] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let p = loss_probability(&tickets, i);
            let mean = draws as f64 * p;
            let sd = (draws as f64 * p * (1.0 - p)).sqrt();
            let diff = (count as f64 - mean).abs();
            prop_assert!(
                diff <= 5.0 * sd + 1.0,
                "entry {i} (t={}): observed {count}, expected {mean:.1} ± {sd:.1} (5σ)",
                tickets[i]
            );
        }
    }
}
