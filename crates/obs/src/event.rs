//! The structured event schema shared by every probe point.
//!
//! Events reference threads and clients by raw index (the schedulers'
//! `ThreadId::index()` / arena slots) and describe enums with `'static`
//! string tags, keeping this crate free of upward type dependencies. The
//! JSONL wire format is one object per event:
//!
//! ```json
//! {"t_us":100000,"kind":"dispatch","thread":2,"cpu":0,"wait_us":300000,"queue_depth":3}
//! ```

use std::fmt::Write as _;

use crate::json;

/// A timestamped probe event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated time of the event, in microseconds.
    pub time_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Every probe point in the stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A thread was registered with the kernel.
    ThreadSpawn {
        /// Thread index.
        thread: u32,
    },
    /// A thread left the system for good: its workload issued an exit
    /// burst, or it was killed from outside. Together with
    /// [`EventKind::ThreadSpawn`] this brackets a thread's lifetime, so a
    /// captured window carries enough to recompute per-job response
    /// times (and to replay the window without consulting the kernel).
    ThreadExit {
        /// Thread index.
        thread: u32,
    },
    /// A thread was dispatched onto a CPU.
    Dispatch {
        /// Thread index.
        thread: u32,
        /// CPU index (0 on the uniprocessor kernel).
        cpu: u32,
        /// Ready-queue wait before this dispatch, in microseconds.
        wait_us: u64,
        /// Ready-queue depth immediately after the pick.
        queue_depth: u32,
    },
    /// A dispatch ended.
    QuantumEnd {
        /// Thread index.
        thread: u32,
        /// CPU index.
        cpu: u32,
        /// `"quantum-expired"`, `"yielded"`, `"blocked"`, or `"exited"`.
        reason: &'static str,
        /// CPU time consumed during the dispatch, in microseconds.
        used_us: u64,
    },
    /// A blocked thread became ready.
    Wake {
        /// Thread index.
        thread: u32,
    },
    /// A synchronous request was delivered to a server thread.
    RpcDeliver {
        /// The blocked client thread.
        client: u32,
        /// The server thread now working on its behalf.
        server: u32,
    },
    /// A reply completed an RPC.
    RpcReply {
        /// The client thread being woken.
        client: u32,
        /// The server thread that served it.
        server: u32,
    },
    /// One lottery was held (Figure 1 / Section 4.2).
    LotteryDraw {
        /// `"list"` or `"tree"`.
        structure: &'static str,
        /// Ready entries participating.
        entries: u32,
        /// Search effort: entries scanned (list) or tree depth (tree).
        levels: u32,
        /// Total base-unit value in the pool.
        total: f64,
        /// The winning value drawn in `[0, total)`; `-1` when the pool was
        /// worthless and the pick degenerated to FIFO (no number drawn).
        winning: f64,
        /// The winning thread index.
        winner: u32,
    },
    /// A compensation ticket was granted (Section 4.5).
    Compensation {
        /// Thread index.
        thread: u32,
        /// The multiplicative factor `q/used` now inflating the client.
        factor: f64,
        /// The shard (CPU) the grant is attributed to — the client's home
        /// shard at grant time, so traces can localize compensation churn.
        shard: u32,
    },
    /// A compensation ticket was revoked (the client won its next lottery
    /// and used a full quantum's worth of attention).
    CompensationRevoked {
        /// Thread index.
        thread: u32,
        /// The shard (CPU) that was carrying the compensated weight.
        shard: u32,
    },
    /// A per-shard compensation-weight sample (emitted when the
    /// distributed rebalancer compares effective shard totals).
    ShardCompensation {
        /// Shard index.
        shard: u32,
        /// Compensated weight homed on the shard, in base units.
        weight: f64,
        /// The shard's effective total (ready tree + resting compensated
        /// weight), in base units.
        total: f64,
    },
    /// A ledger mutation (the audit log of Section 4.3 operations).
    LedgerOp {
        /// Operation tag, e.g. `"fund-client"`.
        op: &'static str,
    },
    /// A scheduler client's direct funding changed, with the mutation's
    /// origin. [`EventKind::LedgerOp`] records *that* the ledger moved;
    /// this records *who asked*, which is what an audit needs when a
    /// tenant disputes their share — and what a replay needs to tell
    /// scripted inflation apart from spawn-time funding.
    WeightChange {
        /// Client index (the scheduler's arena slot).
        client: u32,
        /// The new direct funding amount, in tickets of the funding
        /// currency.
        tickets: u64,
        /// Mutation origin: `"spawn"` (initial funding) or
        /// `"set-funding"` (a runtime inflation/deflation request).
        origin: &'static str,
    },
    /// A valuation-cache read.
    CacheLookup {
        /// `"client"` or `"currency"`.
        kind: &'static str,
        /// Whether the value was served from the cache.
        hit: bool,
    },
    /// A mutation invalidated part of the valuation cache.
    CacheInvalidate {
        /// Cached currency entries removed.
        currencies: u32,
        /// Cached client entries removed.
        clients: u32,
        /// Dirty-queue depth after the invalidation.
        dirty_depth: u32,
    },
    /// The scheduler drained the dirty-client queue before a draw.
    DirtyDrain {
        /// Clients drained.
        drained: u32,
    },
    /// A scheduler drained one shard's dirty queue in a single batch at a
    /// dispatch point (the event-driven core's once-per-dispatch drain,
    /// rather than a per-client walk).
    DirtyBatch {
        /// The dirty-queue shard drained.
        shard: u32,
        /// Clients revalued by the batch.
        depth: u32,
    },
    /// A winner-search structure was (re)built wholesale — the alias
    /// table snapshotting its prefix sums, or a tree/list repopulated by
    /// a runtime structure switch.
    StructureRebuild {
        /// `"list"`, `"tree"`, or `"alias"`.
        structure: &'static str,
        /// Entries captured by the rebuild.
        clients: u32,
        /// Stale overlay entries folded in (0 for list/tree).
        stale: u32,
        /// Wall-clock rebuild cost in nanoseconds.
        rebuild_ns: u64,
    },
    /// A per-CPU ready-queue depth sample.
    QueueDepth {
        /// CPU index.
        cpu: u32,
        /// Ready-queue depth observed.
        depth: u32,
    },
    /// A distributed lottery resolved a CPU's pick to a shard.
    ShardPick {
        /// CPU index that held the lottery.
        cpu: u32,
        /// Shard whose tree the winner was drawn from.
        shard: u32,
        /// Whether the pick stole from a foreign shard (local was empty).
        stolen: bool,
    },
    /// A CPU with an empty local tree stole work from another shard.
    ShardSteal {
        /// The stealing CPU.
        cpu: u32,
        /// The shard stolen from (the heaviest at the time).
        victim: u32,
        /// The thread taken.
        thread: u32,
    },
    /// A client was re-homed to another shard (rebalancing or explicit).
    ShardMigrate {
        /// The migrated thread.
        thread: u32,
        /// Previous home shard.
        from_shard: u32,
        /// New home shard.
        to_shard: u32,
    },
    /// Per-shard ticket weight drifted past the imbalance bound.
    ShardImbalance {
        /// Heaviest shard's total ticket value, in base units.
        max_total: f64,
        /// Mean per-shard total ticket value, in base units.
        mean_total: f64,
    },
    /// A non-CPU resource scheduler granted (or re-priced) a client's
    /// ticket allocation — disk clients, switch circuits, memory clients,
    /// or broker-pushed weights.
    ResourceGrant {
        /// `"cpu"`, `"disk"`, `"mem"`, or `"net"`.
        resource: &'static str,
        /// Scheduler-local client index (disk client, circuit, frame
        /// client — each resource numbers its own clients from zero).
        client: u32,
        /// The granted ticket count.
        tickets: u64,
    },
    /// A resource-level lottery picked a client for one service slot.
    ResourceDraw {
        /// `"disk"` or `"net"` (CPU draws keep [`EventKind::LotteryDraw`]).
        resource: &'static str,
        /// The winning scheduler-local client index.
        client: u32,
        /// Contending entries in this draw's pool.
        entries: u32,
        /// Total tickets in the pool.
        total: u64,
    },
    /// A resource request finished service.
    ResourceComplete {
        /// `"disk"` or `"net"`.
        resource: &'static str,
        /// The served scheduler-local client index.
        client: u32,
        /// Work completed, in the resource's unit (sectors, cells).
        units: u64,
        /// Queueing delay in the resource's native unit: microseconds for
        /// disk requests, slots for switch cells.
        wait: u64,
    },
    /// The broker (re)priced one tenant's backing for one resource.
    BrokerFunding {
        /// Broker tenant index.
        tenant: u32,
        /// `"cpu"`, `"disk"`, `"mem"`, or `"net"`.
        resource: &'static str,
        /// The effective weight now funding the resource, in base units.
        weight: f64,
        /// Whether this rebalance refunded the (idle) backing to the grant.
        refunded: bool,
    },
    /// A cluster node's periodic report reached the market coordinator
    /// over the simulated network: one tenant's aggregate demand on one
    /// node, as the reconciliation loop saw it.
    NodeReport {
        /// Reporting node index.
        node: u32,
        /// Cluster tenant index.
        tenant: u32,
        /// Aggregate backlog (demand units summed over resources) the
        /// node reported for the tenant.
        backlog: u64,
        /// The network round (coordinator reconciliation tick) the report
        /// was delivered in — late reports carry the round they land in,
        /// not the round they were sent.
        round: u32,
    },
    /// Cluster reconciliation moved part of a tenant's grant between
    /// nodes (demand-following rebalance or node-loss recovery).
    GrantMove {
        /// Cluster tenant index.
        tenant: u32,
        /// Node the funding left.
        from_node: u32,
        /// Node the funding arrived at.
        to_node: u32,
        /// Base-currency tickets moved.
        amount: u64,
    },
    /// A partitioned (or lost-and-replaced) node was reabsorbed into the
    /// market and the coordinator's funding view reconverged.
    PartitionHeal {
        /// The healed node index.
        node: u32,
        /// Reconciliation rounds the node spent unreachable.
        rounds: u32,
        /// Reports dropped by the network while it was unreachable.
        dropped: u64,
    },
}

impl EventKind {
    /// The event's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ThreadSpawn { .. } => "spawn",
            EventKind::ThreadExit { .. } => "thread-exit",
            EventKind::Dispatch { .. } => "dispatch",
            EventKind::QuantumEnd { .. } => "quantum-end",
            EventKind::Wake { .. } => "wake",
            EventKind::RpcDeliver { .. } => "rpc-deliver",
            EventKind::RpcReply { .. } => "rpc-reply",
            EventKind::LotteryDraw { .. } => "lottery-draw",
            EventKind::Compensation { .. } => "compensation",
            EventKind::CompensationRevoked { .. } => "compensation-revoked",
            EventKind::ShardCompensation { .. } => "shard-compensation",
            EventKind::LedgerOp { .. } => "ledger-op",
            EventKind::WeightChange { .. } => "weight-change",
            EventKind::CacheLookup { .. } => "cache-lookup",
            EventKind::CacheInvalidate { .. } => "cache-invalidate",
            EventKind::DirtyDrain { .. } => "dirty-drain",
            EventKind::DirtyBatch { .. } => "dirty-batch",
            EventKind::StructureRebuild { .. } => "structure-rebuild",
            EventKind::QueueDepth { .. } => "queue-depth",
            EventKind::ShardPick { .. } => "shard-pick",
            EventKind::ShardSteal { .. } => "shard-steal",
            EventKind::ShardMigrate { .. } => "shard-migrate",
            EventKind::ShardImbalance { .. } => "shard-imbalance",
            EventKind::ResourceGrant { .. } => "resource-grant",
            EventKind::ResourceDraw { .. } => "resource-draw",
            EventKind::ResourceComplete { .. } => "resource-complete",
            EventKind::BrokerFunding { .. } => "broker-funding",
            EventKind::NodeReport { .. } => "node-report",
            EventKind::GrantMove { .. } => "grant-move",
            EventKind::PartitionHeal { .. } => "partition-heal",
        }
    }
}

impl Event {
    /// Serializes the event as one JSON object (the JSONL record format).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t_us\":{},\"kind\":\"{}\"",
            self.time_us,
            self.kind.name()
        );
        match self.kind {
            EventKind::ThreadSpawn { thread }
            | EventKind::ThreadExit { thread }
            | EventKind::Wake { thread } => {
                let _ = write!(s, ",\"thread\":{thread}");
            }
            EventKind::Dispatch {
                thread,
                cpu,
                wait_us,
                queue_depth,
            } => {
                let _ = write!(
                    s,
                    ",\"thread\":{thread},\"cpu\":{cpu},\"wait_us\":{wait_us},\"queue_depth\":{queue_depth}"
                );
            }
            EventKind::QuantumEnd {
                thread,
                cpu,
                reason,
                used_us,
            } => {
                let _ = write!(
                    s,
                    ",\"thread\":{thread},\"cpu\":{cpu},\"reason\":\"{reason}\",\"used_us\":{used_us}"
                );
            }
            EventKind::RpcDeliver { client, server } | EventKind::RpcReply { client, server } => {
                let _ = write!(s, ",\"client\":{client},\"server\":{server}");
            }
            EventKind::LotteryDraw {
                structure,
                entries,
                levels,
                total,
                winning,
                winner,
            } => {
                let _ = write!(
                    s,
                    ",\"structure\":\"{structure}\",\"entries\":{entries},\"levels\":{levels},\"total\":{},\"winning\":{},\"winner\":{winner}",
                    json::number(total),
                    json::number(winning)
                );
            }
            EventKind::Compensation {
                thread,
                factor,
                shard,
            } => {
                let _ = write!(
                    s,
                    ",\"thread\":{thread},\"factor\":{},\"shard\":{shard}",
                    json::number(factor)
                );
            }
            EventKind::CompensationRevoked { thread, shard } => {
                let _ = write!(s, ",\"thread\":{thread},\"shard\":{shard}");
            }
            EventKind::ShardCompensation {
                shard,
                weight,
                total,
            } => {
                let _ = write!(
                    s,
                    ",\"shard\":{shard},\"weight\":{},\"total\":{}",
                    json::number(weight),
                    json::number(total)
                );
            }
            EventKind::LedgerOp { op } => {
                let _ = write!(s, ",\"op\":\"{op}\"");
            }
            EventKind::WeightChange {
                client,
                tickets,
                origin,
            } => {
                let _ = write!(
                    s,
                    ",\"client\":{client},\"tickets\":{tickets},\"origin\":\"{origin}\""
                );
            }
            EventKind::CacheLookup { kind, hit } => {
                let _ = write!(s, ",\"cache\":\"{kind}\",\"hit\":{hit}");
            }
            EventKind::CacheInvalidate {
                currencies,
                clients,
                dirty_depth,
            } => {
                let _ = write!(
                    s,
                    ",\"currencies\":{currencies},\"clients\":{clients},\"dirty_depth\":{dirty_depth}"
                );
            }
            EventKind::DirtyDrain { drained } => {
                let _ = write!(s, ",\"drained\":{drained}");
            }
            EventKind::DirtyBatch { shard, depth } => {
                let _ = write!(s, ",\"shard\":{shard},\"depth\":{depth}");
            }
            EventKind::StructureRebuild {
                structure,
                clients,
                stale,
                rebuild_ns,
            } => {
                let _ = write!(
                    s,
                    ",\"structure\":\"{structure}\",\"clients\":{clients},\"stale\":{stale},\"rebuild_ns\":{rebuild_ns}"
                );
            }
            EventKind::QueueDepth { cpu, depth } => {
                let _ = write!(s, ",\"cpu\":{cpu},\"depth\":{depth}");
            }
            EventKind::ShardPick { cpu, shard, stolen } => {
                let _ = write!(s, ",\"cpu\":{cpu},\"shard\":{shard},\"stolen\":{stolen}");
            }
            EventKind::ShardSteal {
                cpu,
                victim,
                thread,
            } => {
                let _ = write!(s, ",\"cpu\":{cpu},\"victim\":{victim},\"thread\":{thread}");
            }
            EventKind::ShardMigrate {
                thread,
                from_shard,
                to_shard,
            } => {
                let _ = write!(
                    s,
                    ",\"thread\":{thread},\"from_shard\":{from_shard},\"to_shard\":{to_shard}"
                );
            }
            EventKind::ShardImbalance {
                max_total,
                mean_total,
            } => {
                let _ = write!(
                    s,
                    ",\"max_total\":{},\"mean_total\":{}",
                    json::number(max_total),
                    json::number(mean_total)
                );
            }
            EventKind::ResourceGrant {
                resource,
                client,
                tickets,
            } => {
                let _ = write!(
                    s,
                    ",\"resource\":\"{resource}\",\"client\":{client},\"tickets\":{tickets}"
                );
            }
            EventKind::ResourceDraw {
                resource,
                client,
                entries,
                total,
            } => {
                let _ = write!(
                    s,
                    ",\"resource\":\"{resource}\",\"client\":{client},\"entries\":{entries},\"total\":{total}"
                );
            }
            EventKind::ResourceComplete {
                resource,
                client,
                units,
                wait,
            } => {
                let _ = write!(
                    s,
                    ",\"resource\":\"{resource}\",\"client\":{client},\"units\":{units},\"wait\":{wait}"
                );
            }
            EventKind::BrokerFunding {
                tenant,
                resource,
                weight,
                refunded,
            } => {
                let _ = write!(
                    s,
                    ",\"tenant\":{tenant},\"resource\":\"{resource}\",\"weight\":{},\"refunded\":{refunded}",
                    json::number(weight)
                );
            }
            EventKind::NodeReport {
                node,
                tenant,
                backlog,
                round,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"tenant\":{tenant},\"backlog\":{backlog},\"round\":{round}"
                );
            }
            EventKind::GrantMove {
                tenant,
                from_node,
                to_node,
                amount,
            } => {
                let _ = write!(
                    s,
                    ",\"tenant\":{tenant},\"from_node\":{from_node},\"to_node\":{to_node},\"amount\":{amount}"
                );
            }
            EventKind::PartitionHeal {
                node,
                rounds,
                dropped,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"rounds\":{rounds},\"dropped\":{dropped}"
                );
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSONL record back into a typed event — the inverse of
    /// [`Event::to_json`], used to load replay logs.
    ///
    /// String tags are interned against the known wire vocabulary so the
    /// parsed event carries the same `&'static str` values the emitters
    /// use and compares equal to the original. An unknown kind, an
    /// unknown tag, or a missing field is an error: the replay log is an
    /// audit artifact, and a record we cannot faithfully reconstruct
    /// must not silently round-trip.
    pub fn from_json(v: &json::Value) -> Result<Event, String> {
        let time_us = u64_field(v, "t_us")?;
        let kind_name = str_field(v, "kind")?;
        let kind = match kind_name {
            "spawn" => EventKind::ThreadSpawn {
                thread: u32_field(v, "thread")?,
            },
            "thread-exit" => EventKind::ThreadExit {
                thread: u32_field(v, "thread")?,
            },
            "dispatch" => EventKind::Dispatch {
                thread: u32_field(v, "thread")?,
                cpu: u32_field(v, "cpu")?,
                wait_us: u64_field(v, "wait_us")?,
                queue_depth: u32_field(v, "queue_depth")?,
            },
            "quantum-end" => EventKind::QuantumEnd {
                thread: u32_field(v, "thread")?,
                cpu: u32_field(v, "cpu")?,
                reason: intern(v, "reason", END_REASONS)?,
                used_us: u64_field(v, "used_us")?,
            },
            "wake" => EventKind::Wake {
                thread: u32_field(v, "thread")?,
            },
            "rpc-deliver" => EventKind::RpcDeliver {
                client: u32_field(v, "client")?,
                server: u32_field(v, "server")?,
            },
            "rpc-reply" => EventKind::RpcReply {
                client: u32_field(v, "client")?,
                server: u32_field(v, "server")?,
            },
            "lottery-draw" => EventKind::LotteryDraw {
                structure: intern(v, "structure", STRUCTURES)?,
                entries: u32_field(v, "entries")?,
                levels: u32_field(v, "levels")?,
                total: f64_field(v, "total")?,
                winning: f64_field(v, "winning")?,
                winner: u32_field(v, "winner")?,
            },
            "compensation" => EventKind::Compensation {
                thread: u32_field(v, "thread")?,
                factor: f64_field(v, "factor")?,
                shard: u32_field(v, "shard")?,
            },
            "compensation-revoked" => EventKind::CompensationRevoked {
                thread: u32_field(v, "thread")?,
                shard: u32_field(v, "shard")?,
            },
            "shard-compensation" => EventKind::ShardCompensation {
                shard: u32_field(v, "shard")?,
                weight: f64_field(v, "weight")?,
                total: f64_field(v, "total")?,
            },
            "ledger-op" => EventKind::LedgerOp {
                op: intern(v, "op", LEDGER_OPS)?,
            },
            "weight-change" => EventKind::WeightChange {
                client: u32_field(v, "client")?,
                tickets: u64_field(v, "tickets")?,
                origin: intern(v, "origin", WEIGHT_ORIGINS)?,
            },
            "cache-lookup" => EventKind::CacheLookup {
                kind: intern(v, "cache", CACHE_KINDS)?,
                hit: bool_field(v, "hit")?,
            },
            "cache-invalidate" => EventKind::CacheInvalidate {
                currencies: u32_field(v, "currencies")?,
                clients: u32_field(v, "clients")?,
                dirty_depth: u32_field(v, "dirty_depth")?,
            },
            "dirty-drain" => EventKind::DirtyDrain {
                drained: u32_field(v, "drained")?,
            },
            "dirty-batch" => EventKind::DirtyBatch {
                shard: u32_field(v, "shard")?,
                depth: u32_field(v, "depth")?,
            },
            "structure-rebuild" => EventKind::StructureRebuild {
                structure: intern(v, "structure", STRUCTURES)?,
                clients: u32_field(v, "clients")?,
                stale: u32_field(v, "stale")?,
                rebuild_ns: u64_field(v, "rebuild_ns")?,
            },
            "queue-depth" => EventKind::QueueDepth {
                cpu: u32_field(v, "cpu")?,
                depth: u32_field(v, "depth")?,
            },
            "shard-pick" => EventKind::ShardPick {
                cpu: u32_field(v, "cpu")?,
                shard: u32_field(v, "shard")?,
                stolen: bool_field(v, "stolen")?,
            },
            "shard-steal" => EventKind::ShardSteal {
                cpu: u32_field(v, "cpu")?,
                victim: u32_field(v, "victim")?,
                thread: u32_field(v, "thread")?,
            },
            "shard-migrate" => EventKind::ShardMigrate {
                thread: u32_field(v, "thread")?,
                from_shard: u32_field(v, "from_shard")?,
                to_shard: u32_field(v, "to_shard")?,
            },
            "shard-imbalance" => EventKind::ShardImbalance {
                max_total: f64_field(v, "max_total")?,
                mean_total: f64_field(v, "mean_total")?,
            },
            "resource-grant" => EventKind::ResourceGrant {
                resource: intern(v, "resource", RESOURCES)?,
                client: u32_field(v, "client")?,
                tickets: u64_field(v, "tickets")?,
            },
            "resource-draw" => EventKind::ResourceDraw {
                resource: intern(v, "resource", RESOURCES)?,
                client: u32_field(v, "client")?,
                entries: u32_field(v, "entries")?,
                total: u64_field(v, "total")?,
            },
            "resource-complete" => EventKind::ResourceComplete {
                resource: intern(v, "resource", RESOURCES)?,
                client: u32_field(v, "client")?,
                units: u64_field(v, "units")?,
                wait: u64_field(v, "wait")?,
            },
            "broker-funding" => EventKind::BrokerFunding {
                tenant: u32_field(v, "tenant")?,
                resource: intern(v, "resource", RESOURCES)?,
                weight: f64_field(v, "weight")?,
                refunded: bool_field(v, "refunded")?,
            },
            "node-report" => EventKind::NodeReport {
                node: u32_field(v, "node")?,
                tenant: u32_field(v, "tenant")?,
                backlog: u64_field(v, "backlog")?,
                round: u32_field(v, "round")?,
            },
            "grant-move" => EventKind::GrantMove {
                tenant: u32_field(v, "tenant")?,
                from_node: u32_field(v, "from_node")?,
                to_node: u32_field(v, "to_node")?,
                amount: u64_field(v, "amount")?,
            },
            "partition-heal" => EventKind::PartitionHeal {
                node: u32_field(v, "node")?,
                rounds: u32_field(v, "rounds")?,
                dropped: u64_field(v, "dropped")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(Event { time_us, kind })
    }
}

/// Winner-search structure tags: the uniprocessor structures plus the
/// distributed lottery's per-shard rebuild tags.
const STRUCTURES: &[&str] = &["list", "tree", "alias", "shard", "shard-alias"];
/// Quantum-end reasons (`EndReason::as_str` values).
const END_REASONS: &[&str] = &["quantum-expired", "yielded", "blocked", "exited"];
/// Ledger audit-log operation tags.
const LEDGER_OPS: &[&str] = &[
    "activate-client",
    "create-client",
    "create-currency",
    "deactivate-client",
    "destroy-client",
    "destroy-currency",
    "destroy-ticket",
    "fund-client",
    "fund-currency",
    "issue",
    "set-amount",
    "set-compensation",
    "unfund",
];
/// Valuation-cache entry kinds.
const CACHE_KINDS: &[&str] = &["client", "currency"];
/// Resource tags shared by grants, draws, completions, and the broker.
const RESOURCES: &[&str] = &["cpu", "disk", "mem", "net"];
/// Weight-mutation origins.
const WEIGHT_ORIGINS: &[&str] = &["spawn", "set-funding"];

fn field<'v>(v: &'v json::Value, name: &str) -> Result<&'v json::Value, String> {
    v.get(name).ok_or_else(|| format!("missing field {name:?}"))
}

fn str_field<'v>(v: &'v json::Value, name: &str) -> Result<&'v str, String> {
    field(v, name)?
        .as_str()
        .ok_or_else(|| format!("field {name:?} is not a string"))
}

fn f64_field(v: &json::Value, name: &str) -> Result<f64, String> {
    field(v, name)?
        .as_f64()
        .ok_or_else(|| format!("field {name:?} is not a number"))
}

fn u64_field(v: &json::Value, name: &str) -> Result<u64, String> {
    let n = f64_field(v, name)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("field {name:?} is not a non-negative integer"));
    }
    Ok(n as u64)
}

fn u32_field(v: &json::Value, name: &str) -> Result<u32, String> {
    u32::try_from(u64_field(v, name)?).map_err(|_| format!("field {name:?} overflows u32"))
}

fn bool_field(v: &json::Value, name: &str) -> Result<bool, String> {
    field(v, name)?
        .as_bool()
        .ok_or_else(|| format!("field {name:?} is not a boolean"))
}

fn intern(v: &json::Value, name: &str, known: &[&'static str]) -> Result<&'static str, String> {
    let s = str_field(v, name)?;
    known
        .iter()
        .copied()
        .find(|k| *k == s)
        .ok_or_else(|| format!("unknown {name} tag {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_records_parse_back() {
        let events = [
            Event {
                time_us: 100,
                kind: EventKind::Dispatch {
                    thread: 2,
                    cpu: 0,
                    wait_us: 300,
                    queue_depth: 3,
                },
            },
            Event {
                time_us: 200,
                kind: EventKind::LotteryDraw {
                    structure: "tree",
                    entries: 4,
                    levels: 2,
                    total: 1000.0,
                    winning: 431.25,
                    winner: 1,
                },
            },
            Event {
                time_us: 300,
                kind: EventKind::CacheLookup {
                    kind: "client",
                    hit: true,
                },
            },
            Event {
                time_us: 400,
                kind: EventKind::Compensation {
                    thread: 3,
                    factor: 4.0,
                    shard: 1,
                },
            },
            Event {
                time_us: 500,
                kind: EventKind::CompensationRevoked {
                    thread: 3,
                    shard: 1,
                },
            },
            Event {
                time_us: 600,
                kind: EventKind::ShardCompensation {
                    shard: 2,
                    weight: 300.0,
                    total: 1100.0,
                },
            },
            Event {
                time_us: 700,
                kind: EventKind::ResourceGrant {
                    resource: "disk",
                    client: 1,
                    tickets: 500,
                },
            },
            Event {
                time_us: 800,
                kind: EventKind::ResourceDraw {
                    resource: "net",
                    client: 0,
                    entries: 3,
                    total: 750,
                },
            },
            Event {
                time_us: 900,
                kind: EventKind::ResourceComplete {
                    resource: "disk",
                    client: 1,
                    units: 16,
                    wait: 4200,
                },
            },
            Event {
                time_us: 1000,
                kind: EventKind::BrokerFunding {
                    tenant: 0,
                    resource: "mem",
                    weight: 333.25,
                    refunded: false,
                },
            },
            Event {
                time_us: 1100,
                kind: EventKind::StructureRebuild {
                    structure: "alias",
                    clients: 1_000_000,
                    stale: 125_000,
                    rebuild_ns: 4_200_000,
                },
            },
        ];
        for e in events {
            let v = json::parse(&e.to_json()).expect("event JSON parses");
            assert_eq!(
                v.get("t_us").and_then(json::Value::as_f64),
                Some(e.time_us as f64)
            );
            assert_eq!(
                v.get("kind").and_then(json::Value::as_str),
                Some(e.kind.name())
            );
        }
    }

    /// One exemplar per `EventKind` variant, with awkward field values
    /// (non-integral floats, zero, large counters) so serialization slip
    /// in any replay-critical field fails loudly.
    fn one_of_each() -> Vec<Event> {
        let kinds = vec![
            EventKind::ThreadSpawn { thread: 7 },
            EventKind::ThreadExit { thread: 7 },
            EventKind::Dispatch {
                thread: 2,
                cpu: 1,
                wait_us: 300,
                queue_depth: 3,
            },
            EventKind::QuantumEnd {
                thread: 2,
                cpu: 1,
                reason: "blocked",
                used_us: 25_000,
            },
            EventKind::Wake { thread: 4 },
            EventKind::RpcDeliver {
                client: 1,
                server: 2,
            },
            EventKind::RpcReply {
                client: 1,
                server: 2,
            },
            EventKind::LotteryDraw {
                structure: "alias",
                entries: 5,
                levels: 3,
                total: 700.0,
                winning: 431.2578125,
                winner: 4,
            },
            EventKind::Compensation {
                thread: 3,
                factor: 4.0,
                shard: 1,
            },
            EventKind::CompensationRevoked {
                thread: 3,
                shard: 1,
            },
            EventKind::ShardCompensation {
                shard: 2,
                weight: 300.5,
                total: 1100.25,
            },
            EventKind::LedgerOp { op: "fund-client" },
            EventKind::WeightChange {
                client: 9,
                tickets: 400,
                origin: "set-funding",
            },
            EventKind::CacheLookup {
                kind: "currency",
                hit: false,
            },
            EventKind::CacheInvalidate {
                currencies: 2,
                clients: 5,
                dirty_depth: 7,
            },
            EventKind::DirtyDrain { drained: 12 },
            EventKind::DirtyBatch { shard: 1, depth: 6 },
            EventKind::StructureRebuild {
                structure: "alias",
                clients: 1_000_000,
                stale: 125_000,
                rebuild_ns: 4_200_000,
            },
            EventKind::QueueDepth { cpu: 3, depth: 9 },
            EventKind::ShardPick {
                cpu: 0,
                shard: 2,
                stolen: true,
            },
            EventKind::ShardSteal {
                cpu: 0,
                victim: 2,
                thread: 11,
            },
            EventKind::ShardMigrate {
                thread: 11,
                from_shard: 2,
                to_shard: 0,
            },
            EventKind::ShardImbalance {
                max_total: 900.125,
                mean_total: 600.0,
            },
            EventKind::ResourceGrant {
                resource: "disk",
                client: 1,
                tickets: 500,
            },
            EventKind::ResourceDraw {
                resource: "net",
                client: 0,
                entries: 3,
                total: 750,
            },
            EventKind::ResourceComplete {
                resource: "disk",
                client: 1,
                units: 16,
                wait: 4200,
            },
            EventKind::BrokerFunding {
                tenant: 0,
                resource: "mem",
                weight: 333.25,
                refunded: false,
            },
            EventKind::NodeReport {
                node: 3,
                tenant: 1,
                backlog: 1_000_000,
                round: 42,
            },
            EventKind::GrantMove {
                tenant: 1,
                from_node: 3,
                to_node: 0,
                amount: 750,
            },
            EventKind::PartitionHeal {
                node: 3,
                rounds: 6,
                dropped: 18,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                time_us: 100 * (i as u64 + 1),
                kind,
            })
            .collect()
    }

    /// Every variant survives serialize → `json::parse` → `from_json`
    /// with every field bit-exact — the contract replay loading rests on.
    #[test]
    fn every_variant_round_trips_through_jsonl() {
        let events = one_of_each();
        // A compile-time nudge: adding a variant must extend `one_of_each`.
        // (match is exhaustive over EventKind, so a new variant fails here)
        for e in &events {
            match e.kind {
                EventKind::ThreadSpawn { .. }
                | EventKind::ThreadExit { .. }
                | EventKind::Dispatch { .. }
                | EventKind::QuantumEnd { .. }
                | EventKind::Wake { .. }
                | EventKind::RpcDeliver { .. }
                | EventKind::RpcReply { .. }
                | EventKind::LotteryDraw { .. }
                | EventKind::Compensation { .. }
                | EventKind::CompensationRevoked { .. }
                | EventKind::ShardCompensation { .. }
                | EventKind::LedgerOp { .. }
                | EventKind::WeightChange { .. }
                | EventKind::CacheLookup { .. }
                | EventKind::CacheInvalidate { .. }
                | EventKind::DirtyDrain { .. }
                | EventKind::DirtyBatch { .. }
                | EventKind::StructureRebuild { .. }
                | EventKind::QueueDepth { .. }
                | EventKind::ShardPick { .. }
                | EventKind::ShardSteal { .. }
                | EventKind::ShardMigrate { .. }
                | EventKind::ShardImbalance { .. }
                | EventKind::ResourceGrant { .. }
                | EventKind::ResourceDraw { .. }
                | EventKind::ResourceComplete { .. }
                | EventKind::BrokerFunding { .. }
                | EventKind::NodeReport { .. }
                | EventKind::GrantMove { .. }
                | EventKind::PartitionHeal { .. } => {}
            }
        }
        for e in events {
            let line = e.to_json();
            let v = json::parse(&line).expect("event JSON parses");
            let back = Event::from_json(&v)
                .unwrap_or_else(|err| panic!("{} does not parse back: {err}", e.kind.name()));
            assert_eq!(back, e, "round-trip of {} altered a field", e.kind.name());
        }
    }

    #[test]
    fn from_json_rejects_unknown_kind_and_tags() {
        let bad_kind = json::parse(r#"{"t_us":1,"kind":"no-such-event"}"#).unwrap();
        assert!(Event::from_json(&bad_kind).is_err());
        let bad_tag = json::parse(
            r#"{"t_us":1,"kind":"quantum-end","thread":0,"cpu":0,"reason":"meteor","used_us":1}"#,
        )
        .unwrap();
        assert!(Event::from_json(&bad_tag).is_err());
        let missing = json::parse(r#"{"t_us":1,"kind":"dispatch","thread":0,"cpu":0}"#).unwrap();
        assert!(Event::from_json(&missing).is_err());
    }

    #[test]
    fn degenerate_draw_marks_winning_negative() {
        let e = Event {
            time_us: 0,
            kind: EventKind::LotteryDraw {
                structure: "list",
                entries: 2,
                levels: 1,
                total: 0.0,
                winning: -1.0,
                winner: 0,
            },
        };
        let v = json::parse(&e.to_json()).unwrap();
        assert_eq!(v.get("winning").and_then(json::Value::as_f64), Some(-1.0));
    }
}
