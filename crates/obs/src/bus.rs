//! The probe bus: one event pipeline for every layer.
//!
//! A [`ProbeBus`] is cloned into each instrumented layer (ledger, policy,
//! kernel); clones share the recorder list and the event clock. The
//! disabled bus — the default — is `None` inside: emitting through it is
//! one branch, and because [`ProbeBus::emit`] takes a *closure*, the event
//! payload is never even constructed. That is the "zero overhead when
//! disabled" contract the dispatch benchmarks verify.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;

struct BusInner {
    /// The emitting kernel's clock, in microseconds; stamped onto every
    /// event so probes in clockless layers (the ledger) get coherent
    /// timestamps.
    clock_us: AtomicU64,
    recorders: Mutex<Vec<Box<dyn Recorder + Send>>>,
}

/// A cloneable handle to a shared probe pipeline.
#[derive(Clone)]
pub struct ProbeBus {
    inner: Option<Arc<BusInner>>,
}

impl Default for ProbeBus {
    fn default() -> Self {
        Self::disabled()
    }
}

impl fmt::Debug for ProbeBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbeBus")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl ProbeBus {
    /// A disabled bus: emits are a single branch, nothing is recorded.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled bus with no recorders yet (attach some with
    /// [`ProbeBus::attach`]).
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(BusInner {
                clock_us: AtomicU64::new(0),
                recorders: Mutex::new(Vec::new()),
            })),
        }
    }

    /// An enabled bus with one recorder attached.
    pub fn with_recorder(recorder: impl Recorder + Send + 'static) -> Self {
        let bus = Self::enabled();
        bus.attach(recorder);
        bus
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a recorder; every subsequent emit fans out to it too.
    ///
    /// Returns `false` (and drops the recorder) on a disabled bus — a
    /// disabled bus is permanently inert; build an enabled one instead.
    pub fn attach(&self, recorder: impl Recorder + Send + 'static) -> bool {
        match &self.inner {
            Some(inner) => {
                inner
                    .recorders
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Box::new(recorder));
                true
            }
            None => false,
        }
    }

    /// Advances the bus clock (called by the kernel as simulated time
    /// moves; cheap enough to call per event).
    pub fn set_time_us(&self, time_us: u64) {
        if let Some(inner) = &self.inner {
            inner.clock_us.store(time_us, Ordering::Relaxed);
        }
    }

    /// The current bus clock.
    pub fn time_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.clock_us.load(Ordering::Relaxed))
    }

    /// Emits an event to every recorder.
    ///
    /// The closure is only invoked when the bus is enabled, so disabled
    /// emission costs one branch and no payload construction.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> EventKind) {
        let Some(inner) = &self.inner else {
            return;
        };
        let event = Event {
            time_us: inner.clock_us.load(Ordering::Relaxed),
            kind: build(),
        };
        let mut recorders = inner.recorders.lock().unwrap_or_else(|e| e.into_inner());
        for r in recorders.iter_mut() {
            r.record(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightRecorder;
    use crate::recorder::Shared;

    #[test]
    fn disabled_bus_never_builds_payloads() {
        let bus = ProbeBus::disabled();
        let mut built = false;
        bus.emit(|| {
            built = true;
            EventKind::Wake { thread: 0 }
        });
        assert!(!built);
        assert!(!bus.is_enabled());
        assert!(!bus.attach(FlightRecorder::new(4)));
    }

    #[test]
    fn clones_share_recorders_and_clock() {
        let flight = Shared::new(FlightRecorder::new(16));
        let bus = ProbeBus::with_recorder(flight.clone());
        let clone = bus.clone();
        clone.set_time_us(42);
        bus.emit(|| EventKind::Wake { thread: 7 });
        assert_eq!(bus.time_us(), 42);
        flight.with(|f| {
            assert_eq!(f.len(), 1);
            let e = f.events().next().unwrap();
            assert_eq!(e.time_us, 42);
            assert_eq!(e.kind, EventKind::Wake { thread: 7 });
        });
    }

    #[test]
    fn fan_out_reaches_every_recorder() {
        let a = Shared::new(FlightRecorder::new(8));
        let b = Shared::new(FlightRecorder::new(8));
        let bus = ProbeBus::with_recorder(a.clone());
        bus.attach(b.clone());
        bus.emit(|| EventKind::LedgerOp { op: "issue" });
        assert_eq!(a.with(|f| f.len()), 1);
        assert_eq!(b.with(|f| f.len()), 1);
    }
}
