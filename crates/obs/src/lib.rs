//! Observability substrate for the lottery-scheduling stack.
//!
//! The paper's entire evaluation (Figures 4–9, Section 5.6) is built on
//! *observing* the scheduler: per-window shares, observed-vs-entitled
//! error, response-time distributions, and overhead. This crate provides
//! the measurement plumbing as a reusable layer below the ledger and the
//! simulator:
//!
//! * [`ProbeBus`] — a structured event bus that is **zero-overhead when
//!   disabled**: a disabled bus is a single `Option` check, and event
//!   payloads are built lazily (via closure) only when at least one
//!   recorder is attached.
//! * [`Recorder`] — the sink trait. [`NopRecorder`] discards everything
//!   (for measuring bus overhead), [`FlightRecorder`] keeps a bounded ring
//!   of recent events, [`Aggregator`] folds events into counters and
//!   histograms, and [`FairnessMonitor`] derives per-client
//!   observed-vs-entitled share drift with a binomial z-score alarm
//!   (Figure 4's error statistics, continuously). [`DominantShareMonitor`]
//!   extends the same idea across resources: it folds disk/net completion
//!   and broker funding events into per-tenant dominant-share drift.
//! * [`PerThreadFlight`] — per-worker flight lanes for the real-thread
//!   backend, merged deterministically by `(time_us, lane, arrival)` at
//!   quiesce so multi-threaded captures stay reproducible.
//! * Exporters — JSONL flight records ([`FlightRecorder::to_jsonl`]),
//!   Chrome `trace_event` timeline JSON ([`FlightRecorder::to_chrome_trace`]),
//!   and a Prometheus-style text snapshot ([`Aggregator::prometheus_text`]).
//! * [`replay`] — deterministic record/replay logs: [`ReplayHeader`]
//!   stamps a capture with the RNG state, structure, shard count, and
//!   ledger snapshot; [`ReplayLog`] round-trips header + events through
//!   JSONL; [`first_divergence`] diffs a regenerated stream against the
//!   recording event by event. The re-execution lives in the simulator;
//!   this crate owns the artifact.
//! * [`json`] — the dependency-free JSON writer/parser backing every
//!   exporter (and `lotteryctl --json`).
//!
//! Events carry raw integer ids (thread/client indexes) and static string
//! tags, so this crate sits below `lottery-core` with no type
//! dependencies on the layers it observes.

pub mod aggregate;
pub mod bus;
pub mod dominant;
pub mod event;
pub mod fairness;
pub mod flight;
pub mod json;
pub mod perthread;
pub mod recorder;
pub mod replay;

pub use aggregate::Aggregator;
pub use bus::ProbeBus;
pub use dominant::{DominantShareMonitor, DominantShareReport, ResourceShareRow, TenantShareRow};
pub use event::{Event, EventKind};
pub use fairness::{DriftRow, FairnessMonitor, FairnessReport};
pub use flight::FlightRecorder;
pub use perthread::PerThreadFlight;
pub use recorder::{NopRecorder, Recorder, Shared};
pub use replay::{
    first_divergence, CurrencySnapshot, Divergence, ReplayHeader, ReplayLog, TraceJob, TraceSpec,
};
