//! Per-thread flight recording for real-thread kernels.
//!
//! A single [`FlightRecorder`] behind one lock would serialize every
//! probe emission across worker threads — exactly the contention the
//! real-thread backend (`lottery-par`) exists to remove. Instead each
//! worker records into its own lane ([`PerThreadFlight::recorder`]), and
//! the lanes are merged **deterministically at quiesce**: events sort by
//! `(time_us, lane, arrival index)`, so two runs that produce the same
//! per-lane streams produce the same merged stream, regardless of how
//! the OS interleaved the workers.
//!
//! The merge key is worth spelling out: `time_us` orders across lanes on
//! the virtual clock; `lane` breaks cross-worker ties (worker 0 before
//! worker 1 at the same instant); the arrival index preserves each
//! lane's own emission order. Wall-clock arrival order across lanes is
//! deliberately *not* part of the key — it is the one thing a
//! multi-threaded run cannot reproduce.

use crate::event::Event;
use crate::flight::FlightRecorder;
use crate::recorder::Shared;

/// A set of per-worker [`FlightRecorder`] lanes with a deterministic
/// merge.
#[derive(Debug)]
pub struct PerThreadFlight {
    lanes: Vec<Shared<FlightRecorder>>,
}

impl PerThreadFlight {
    /// Creates `lanes` independent recorders, each retaining the most
    /// recent `capacity` events of its own worker.
    ///
    /// # Panics
    ///
    /// Panics on zero lanes or zero capacity.
    pub fn new(lanes: usize, capacity: usize) -> Self {
        assert!(lanes > 0, "per-thread flight needs at least one lane");
        Self {
            lanes: (0..lanes)
                .map(|_| Shared::new(FlightRecorder::new(capacity)))
                .collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The recorder handle for `lane` — attach the clone to that worker's
    /// probe bus; this handle keeps reading the same buffer.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range lane.
    pub fn recorder(&self, lane: usize) -> Shared<FlightRecorder> {
        self.lanes[lane].clone()
    }

    /// Events dropped across all lanes (per-lane capacity evictions).
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.with(|r| r.dropped())).sum()
    }

    /// Merges every lane's retained events into one deterministic
    /// stream, ordered by `(time_us, lane, arrival index)`.
    ///
    /// Call at quiesce (workers joined): a lane still being written to
    /// merges whatever it holds at lock acquisition.
    pub fn merged(&self) -> Vec<Event> {
        let mut tagged: Vec<(u64, usize, usize, Event)> = Vec::new();
        for (lane, shared) in self.lanes.iter().enumerate() {
            shared.with(|r| {
                for (i, ev) in r.events().enumerate() {
                    tagged.push((ev.time_us, lane, i, *ev));
                }
            });
        }
        tagged.sort_by_key(|&(t, lane, i, _)| (t, lane, i));
        tagged.into_iter().map(|(_, _, _, ev)| ev).collect()
    }

    /// The merged stream as JSONL, one event per line.
    pub fn merged_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.merged() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::recorder::Recorder;

    fn ev(time_us: u64, thread: u32) -> Event {
        Event {
            time_us,
            kind: EventKind::Wake { thread },
        }
    }

    #[test]
    fn merge_orders_by_time_then_lane_then_arrival() {
        let flight = PerThreadFlight::new(2, 16);
        let mut lane0 = flight.recorder(0);
        let mut lane1 = flight.recorder(1);
        // Lane 1 records "first" in wall time; the merge must not care.
        lane1.record(&ev(5, 10));
        lane1.record(&ev(5, 11));
        lane0.record(&ev(3, 0));
        lane0.record(&ev(5, 1));
        let merged = flight.merged();
        let keys: Vec<(u64, u32)> = merged
            .iter()
            .map(|e| match e.kind {
                EventKind::Wake { thread } => (e.time_us, thread),
                _ => unreachable!(),
            })
            .collect();
        // time 3 first; at time 5 lane 0 precedes lane 1; within lane 1,
        // arrival order holds.
        assert_eq!(keys, vec![(3, 0), (5, 1), (5, 10), (5, 11)]);
    }

    #[test]
    fn merge_is_interleaving_invariant() {
        // Two runs with different wall-clock interleavings of the same
        // per-lane streams merge identically.
        let run = |flip: bool| {
            let flight = PerThreadFlight::new(2, 16);
            let mut l0 = flight.recorder(0);
            let mut l1 = flight.recorder(1);
            if flip {
                l1.record(&ev(2, 20));
                l0.record(&ev(1, 10));
                l1.record(&ev(4, 21));
                l0.record(&ev(3, 11));
            } else {
                l0.record(&ev(1, 10));
                l0.record(&ev(3, 11));
                l1.record(&ev(2, 20));
                l1.record(&ev(4, 21));
            }
            flight.merged_jsonl()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn dropped_counts_all_lanes() {
        let flight = PerThreadFlight::new(2, 1);
        let mut l0 = flight.recorder(0);
        for t in 0..3 {
            l0.record(&ev(t, 0));
        }
        assert_eq!(flight.dropped(), 2);
        assert_eq!(flight.merged().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = PerThreadFlight::new(0, 8);
    }

    /// The probe path crosses OS threads in the real-thread backend: a
    /// bus and its attached recorders move into worker threads and are
    /// read from the spawning thread at quiesce. Compile-time evidence.
    #[test]
    fn probe_path_is_send_sync() {
        fn assert_send<T: Send>() {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::ProbeBus>();
        assert_send_sync::<Shared<FlightRecorder>>();
        assert_send::<PerThreadFlight>();
    }
}
