//! Counter/histogram aggregation and the Prometheus-style snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use lottery_stats::{Histogram, Summary};

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;

/// Folds the event stream into counters and distributions.
///
/// Where the [`crate::FlightRecorder`] answers "what just happened", the
/// aggregator answers "how much, how often, how long" over a whole run —
/// the numbers a `stat` verb or a scrape endpoint reports.
#[derive(Debug)]
pub struct Aggregator {
    /// Lotteries held.
    pub draws: u64,
    /// Ready entries per draw.
    pub draw_entries: Summary,
    /// Search effort per draw (entries scanned / tree levels).
    pub draw_levels: Summary,
    /// Total pool value per draw, in base units.
    pub draw_total: Summary,
    /// Dispatches observed.
    pub dispatches: u64,
    /// Ready-queue wait before dispatch, in microseconds.
    pub dispatch_wait_us: Summary,
    /// Ready-queue wait distribution (0–1 s, 50 buckets).
    pub dispatch_wait_hist: Histogram,
    /// Ready-queue depth after each pick.
    pub queue_depth: Summary,
    /// Per-CPU maximum observed queue depth.
    pub cpu_queue_depth_max: BTreeMap<u32, u32>,
    /// Valuation-cache hits.
    pub cache_hits: u64,
    /// Valuation-cache misses.
    pub cache_misses: u64,
    /// Cached currency entries removed by invalidations.
    pub invalidated_currencies: u64,
    /// Cached client entries removed by invalidations.
    pub invalidated_clients: u64,
    /// Dirty-queue depth after each invalidation.
    pub dirty_depth: Summary,
    /// Clients drained per dirty-queue drain.
    pub dirty_drained: Summary,
    /// Winner-search structure rebuilds observed.
    pub structure_rebuilds: u64,
    /// Wall-clock cost per structure rebuild, in nanoseconds.
    pub structure_rebuild_ns: Summary,
    /// Compensation tickets granted.
    pub compensations: u64,
    /// Compensation tickets revoked (cleared at the next dispatch).
    pub compensation_revocations: u64,
    /// Last observed compensated weight per shard, in base units.
    pub shard_comp_weight: BTreeMap<u32, f64>,
    /// Distributed-lottery picks resolved to a shard.
    pub shard_picks: u64,
    /// Picks that stole from a foreign shard (local tree empty).
    pub shard_steals: u64,
    /// Clients re-homed to another shard.
    pub shard_migrations: u64,
    /// Imbalance-bound violations observed by the rebalancer.
    pub shard_imbalances: u64,
    /// Ledger mutations by operation tag.
    pub ledger_ops: BTreeMap<&'static str, u64>,
    /// Resource-level lottery draws by resource tag.
    pub resource_draws: BTreeMap<&'static str, u64>,
    /// Work units completed by resource tag (sectors, cells).
    pub resource_units: BTreeMap<&'static str, u64>,
    /// Queueing delay per completed resource request, by resource tag, in
    /// the resource's native unit (us for disk, slots for net).
    pub resource_wait: BTreeMap<&'static str, Summary>,
    /// Broker funding updates observed.
    pub broker_fundings: u64,
    /// Broker rebalances that refunded an idle backing to the grant.
    pub broker_refunds: u64,
    /// Last broker-pushed weight per (tenant, resource), in base units.
    pub broker_weight: BTreeMap<(u32, &'static str), f64>,
    /// Cluster node reports delivered to the coordinator.
    pub node_reports: u64,
    /// Cluster grant moves (reconciliation + recovery).
    pub grant_moves: u64,
    /// Base-currency tickets moved between nodes, cumulative.
    pub grant_moved_amount: u64,
    /// Partition/node-loss heals observed.
    pub partition_heals: u64,
    /// Last reported aggregate backlog per (node, tenant).
    pub node_backlog: BTreeMap<(u32, u32), u64>,
}

impl Default for Aggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self {
            draws: 0,
            draw_entries: Summary::new(),
            draw_levels: Summary::new(),
            draw_total: Summary::new(),
            dispatches: 0,
            dispatch_wait_us: Summary::new(),
            dispatch_wait_hist: Histogram::new(0.0, 1_000_000.0, 50),
            queue_depth: Summary::new(),
            cpu_queue_depth_max: BTreeMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            invalidated_currencies: 0,
            invalidated_clients: 0,
            dirty_depth: Summary::new(),
            dirty_drained: Summary::new(),
            structure_rebuilds: 0,
            structure_rebuild_ns: Summary::new(),
            compensations: 0,
            compensation_revocations: 0,
            shard_comp_weight: BTreeMap::new(),
            shard_picks: 0,
            shard_steals: 0,
            shard_migrations: 0,
            shard_imbalances: 0,
            ledger_ops: BTreeMap::new(),
            resource_draws: BTreeMap::new(),
            resource_units: BTreeMap::new(),
            resource_wait: BTreeMap::new(),
            broker_fundings: 0,
            broker_refunds: 0,
            broker_weight: BTreeMap::new(),
            node_reports: 0,
            grant_moves: 0,
            grant_moved_amount: 0,
            partition_heals: 0,
            node_backlog: BTreeMap::new(),
        }
    }

    /// Cache hit rate in `[0, 1]`, or `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Renders the counters in the Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        let mut counter = |name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter("lottery_draws_total", "Lotteries held.", self.draws as f64);
        counter(
            "lottery_dispatches_total",
            "Threads dispatched.",
            self.dispatches as f64,
        );
        counter(
            "lottery_cache_hits_total",
            "Valuation-cache hits.",
            self.cache_hits as f64,
        );
        counter(
            "lottery_cache_misses_total",
            "Valuation-cache misses.",
            self.cache_misses as f64,
        );
        counter(
            "lottery_cache_invalidated_currencies_total",
            "Cached currency values invalidated.",
            self.invalidated_currencies as f64,
        );
        counter(
            "lottery_cache_invalidated_clients_total",
            "Cached client values invalidated.",
            self.invalidated_clients as f64,
        );
        counter(
            "lottery_structure_rebuilds_total",
            "Winner-search structure rebuilds.",
            self.structure_rebuilds as f64,
        );
        counter(
            "lottery_compensations_total",
            "Compensation tickets granted.",
            self.compensations as f64,
        );
        counter(
            "lottery_compensation_revocations_total",
            "Compensation tickets revoked at dispatch.",
            self.compensation_revocations as f64,
        );
        counter(
            "lottery_shard_picks_total",
            "Distributed-lottery picks resolved to a shard.",
            self.shard_picks as f64,
        );
        counter(
            "lottery_shard_steals_total",
            "Picks that stole from a foreign shard.",
            self.shard_steals as f64,
        );
        counter(
            "lottery_shard_migrations_total",
            "Clients re-homed to another shard.",
            self.shard_migrations as f64,
        );
        counter(
            "lottery_shard_imbalances_total",
            "Imbalance-bound violations observed.",
            self.shard_imbalances as f64,
        );
        counter(
            "lottery_broker_fundings_total",
            "Broker funding updates observed.",
            self.broker_fundings as f64,
        );
        counter(
            "lottery_broker_refunds_total",
            "Broker rebalances that refunded an idle backing.",
            self.broker_refunds as f64,
        );
        counter(
            "lottery_cluster_node_reports_total",
            "Cluster node reports delivered to the coordinator.",
            self.node_reports as f64,
        );
        counter(
            "lottery_cluster_grant_moves_total",
            "Cluster grant moves between nodes.",
            self.grant_moves as f64,
        );
        counter(
            "lottery_cluster_grant_moved_tickets_total",
            "Base-currency tickets moved between nodes.",
            self.grant_moved_amount as f64,
        );
        counter(
            "lottery_cluster_partition_heals_total",
            "Partition/node-loss heals observed.",
            self.partition_heals as f64,
        );
        let _ = writeln!(
            out,
            "# HELP lottery_ledger_ops_total Ledger mutations by operation."
        );
        let _ = writeln!(out, "# TYPE lottery_ledger_ops_total counter");
        for (op, count) in &self.ledger_ops {
            let _ = writeln!(out, "lottery_ledger_ops_total{{op=\"{op}\"}} {count}");
        }
        let _ = writeln!(
            out,
            "# HELP lottery_resource_draws_total Resource-level lottery draws by resource."
        );
        let _ = writeln!(out, "# TYPE lottery_resource_draws_total counter");
        for (resource, count) in &self.resource_draws {
            let _ = writeln!(
                out,
                "lottery_resource_draws_total{{resource=\"{resource}\"}} {count}"
            );
        }
        let _ = writeln!(
            out,
            "# HELP lottery_resource_units_total Work units completed by resource."
        );
        let _ = writeln!(out, "# TYPE lottery_resource_units_total counter");
        for (resource, count) in &self.resource_units {
            let _ = writeln!(
                out,
                "lottery_resource_units_total{{resource=\"{resource}\"}} {count}"
            );
        }
        let mut gauge = |name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "lottery_draw_entries_mean",
            "Mean ready entries per draw.",
            self.draw_entries.mean(),
        );
        gauge(
            "lottery_draw_levels_mean",
            "Mean search effort per draw (entries scanned or tree levels).",
            self.draw_levels.mean(),
        );
        gauge(
            "lottery_dispatch_wait_us_mean",
            "Mean ready-queue wait before dispatch (us).",
            self.dispatch_wait_us.mean(),
        );
        gauge(
            "lottery_dispatch_wait_us_p99",
            "p99 ready-queue wait before dispatch (us).",
            self.dispatch_wait_hist.percentile(0.99).unwrap_or(0.0),
        );
        gauge(
            "lottery_queue_depth_mean",
            "Mean ready-queue depth after pick.",
            self.queue_depth.mean(),
        );
        gauge(
            "lottery_dirty_depth_mean",
            "Mean dirty-queue depth after invalidation.",
            self.dirty_depth.mean(),
        );
        gauge(
            "lottery_structure_rebuild_ns_mean",
            "Mean wall-clock cost per structure rebuild (ns).",
            self.structure_rebuild_ns.mean(),
        );
        gauge(
            "lottery_cache_hit_rate",
            "Valuation-cache hit rate.",
            self.cache_hit_rate().unwrap_or(0.0),
        );
        let _ = writeln!(
            out,
            "# HELP lottery_cpu_queue_depth_max Max observed per-CPU queue depth."
        );
        let _ = writeln!(out, "# TYPE lottery_cpu_queue_depth_max gauge");
        for (cpu, depth) in &self.cpu_queue_depth_max {
            let _ = writeln!(out, "lottery_cpu_queue_depth_max{{cpu=\"{cpu}\"}} {depth}");
        }
        let _ = writeln!(
            out,
            "# HELP lottery_compensation_weight Compensated weight homed per shard (base units)."
        );
        let _ = writeln!(out, "# TYPE lottery_compensation_weight gauge");
        for (shard, weight) in &self.shard_comp_weight {
            let _ = writeln!(
                out,
                "lottery_compensation_weight{{shard=\"{shard}\"}} {weight}"
            );
        }
        let _ = writeln!(
            out,
            "# HELP lottery_resource_wait_mean Mean queueing delay per resource (native unit)."
        );
        let _ = writeln!(out, "# TYPE lottery_resource_wait_mean gauge");
        for (resource, wait) in &self.resource_wait {
            let _ = writeln!(
                out,
                "lottery_resource_wait_mean{{resource=\"{resource}\"}} {}",
                wait.mean()
            );
        }
        let _ = writeln!(
            out,
            "# HELP lottery_broker_weight Last broker-pushed weight per tenant and resource."
        );
        let _ = writeln!(out, "# TYPE lottery_broker_weight gauge");
        for ((tenant, resource), weight) in &self.broker_weight {
            let _ = writeln!(
                out,
                "lottery_broker_weight{{tenant=\"{tenant}\",resource=\"{resource}\"}} {weight}"
            );
        }
        let _ = writeln!(
            out,
            "# HELP lottery_cluster_node_backlog Last reported aggregate backlog per node and tenant."
        );
        let _ = writeln!(out, "# TYPE lottery_cluster_node_backlog gauge");
        for ((node, tenant), backlog) in &self.node_backlog {
            let _ = writeln!(
                out,
                "lottery_cluster_node_backlog{{node=\"{node}\",tenant=\"{tenant}\"}} {backlog}"
            );
        }
        out
    }
}

impl Recorder for Aggregator {
    fn record(&mut self, event: &Event) {
        match event.kind {
            EventKind::Dispatch {
                wait_us,
                queue_depth,
                cpu,
                ..
            } => {
                self.dispatches += 1;
                self.dispatch_wait_us.record(wait_us as f64);
                self.dispatch_wait_hist.record(wait_us as f64);
                self.queue_depth.record(queue_depth as f64);
                let max = self.cpu_queue_depth_max.entry(cpu).or_insert(0);
                *max = (*max).max(queue_depth);
            }
            EventKind::LotteryDraw {
                entries,
                levels,
                total,
                ..
            } => {
                self.draws += 1;
                self.draw_entries.record(entries as f64);
                self.draw_levels.record(levels as f64);
                self.draw_total.record(total);
            }
            EventKind::Compensation { .. } => self.compensations += 1,
            EventKind::CompensationRevoked { .. } => self.compensation_revocations += 1,
            EventKind::ShardCompensation { shard, weight, .. } => {
                self.shard_comp_weight.insert(shard, weight);
            }
            EventKind::LedgerOp { op } => *self.ledger_ops.entry(op).or_insert(0) += 1,
            EventKind::CacheLookup { hit, .. } => {
                if hit {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                }
            }
            EventKind::CacheInvalidate {
                currencies,
                clients,
                dirty_depth,
            } => {
                self.invalidated_currencies += currencies as u64;
                self.invalidated_clients += clients as u64;
                self.dirty_depth.record(dirty_depth as f64);
            }
            EventKind::DirtyDrain { drained } => self.dirty_drained.record(drained as f64),
            // Batched drains feed the same depth statistic: one batch of
            // `depth` clients is the same revaluation work as `depth`
            // notifications drained singly.
            EventKind::DirtyBatch { depth, .. } => self.dirty_drained.record(depth as f64),
            EventKind::StructureRebuild { rebuild_ns, .. } => {
                self.structure_rebuilds += 1;
                self.structure_rebuild_ns.record(rebuild_ns as f64);
            }
            EventKind::ShardPick { stolen, .. } => {
                self.shard_picks += 1;
                self.shard_steals += u64::from(stolen);
            }
            EventKind::ShardSteal { .. } => {}
            EventKind::ShardMigrate { .. } => self.shard_migrations += 1,
            EventKind::ShardImbalance { .. } => self.shard_imbalances += 1,
            EventKind::QueueDepth { cpu, depth } => {
                self.queue_depth.record(depth as f64);
                let max = self.cpu_queue_depth_max.entry(cpu).or_insert(0);
                *max = (*max).max(depth);
            }
            EventKind::ResourceGrant { .. } => {}
            EventKind::ResourceDraw { resource, .. } => {
                *self.resource_draws.entry(resource).or_insert(0) += 1;
            }
            EventKind::ResourceComplete {
                resource,
                units,
                wait,
                ..
            } => {
                *self.resource_units.entry(resource).or_insert(0) += units;
                self.resource_wait
                    .entry(resource)
                    .or_default()
                    .record(wait as f64);
            }
            EventKind::BrokerFunding {
                tenant,
                resource,
                weight,
                refunded,
            } => {
                self.broker_fundings += 1;
                self.broker_refunds += u64::from(refunded);
                self.broker_weight.insert((tenant, resource), weight);
            }
            EventKind::NodeReport {
                node,
                tenant,
                backlog,
                ..
            } => {
                self.node_reports += 1;
                self.node_backlog.insert((node, tenant), backlog);
            }
            EventKind::GrantMove { amount, .. } => {
                self.grant_moves += 1;
                self.grant_moved_amount += amount;
            }
            EventKind::PartitionHeal { .. } => self.partition_heals += 1,
            EventKind::ThreadSpawn { .. }
            | EventKind::ThreadExit { .. }
            | EventKind::WeightChange { .. }
            | EventKind::QuantumEnd { .. }
            | EventKind::Wake { .. }
            | EventKind::RpcDeliver { .. }
            | EventKind::RpcReply { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_counters_and_snapshot_renders() {
        let mut a = Aggregator::new();
        let feed = [
            EventKind::Dispatch {
                thread: 0,
                cpu: 0,
                wait_us: 100,
                queue_depth: 3,
            },
            EventKind::LotteryDraw {
                structure: "list",
                entries: 4,
                levels: 2,
                total: 1000.0,
                winning: 1.0,
                winner: 0,
            },
            EventKind::CacheLookup {
                kind: "client",
                hit: true,
            },
            EventKind::CacheLookup {
                kind: "client",
                hit: false,
            },
            EventKind::CacheInvalidate {
                currencies: 2,
                clients: 1,
                dirty_depth: 1,
            },
            EventKind::LedgerOp { op: "fund-client" },
            EventKind::LedgerOp { op: "fund-client" },
            EventKind::Compensation {
                thread: 0,
                factor: 2.0,
                shard: 1,
            },
            EventKind::CompensationRevoked {
                thread: 0,
                shard: 1,
            },
            EventKind::ShardCompensation {
                shard: 1,
                weight: 250.0,
                total: 1250.0,
            },
            EventKind::ResourceDraw {
                resource: "disk",
                client: 0,
                entries: 2,
                total: 750,
            },
            EventKind::ResourceComplete {
                resource: "disk",
                client: 0,
                units: 16,
                wait: 900,
            },
            EventKind::BrokerFunding {
                tenant: 0,
                resource: "disk",
                weight: 500.0,
                refunded: false,
            },
            EventKind::BrokerFunding {
                tenant: 1,
                resource: "net",
                weight: 0.0,
                refunded: true,
            },
            EventKind::StructureRebuild {
                structure: "alias",
                clients: 1000,
                stale: 130,
                rebuild_ns: 5000,
            },
            EventKind::NodeReport {
                node: 2,
                tenant: 0,
                backlog: 40,
                round: 3,
            },
            EventKind::GrantMove {
                tenant: 0,
                from_node: 1,
                to_node: 2,
                amount: 250,
            },
            EventKind::PartitionHeal {
                node: 1,
                rounds: 4,
                dropped: 7,
            },
        ];
        for kind in feed {
            a.record(&Event { time_us: 0, kind });
        }
        assert_eq!(a.dispatches, 1);
        assert_eq!(a.draws, 1);
        assert_eq!(a.cache_hit_rate(), Some(0.5));
        assert_eq!(a.invalidated_currencies, 2);
        assert_eq!(a.ledger_ops.get("fund-client"), Some(&2));
        let text = a.prometheus_text();
        assert!(text.contains("lottery_draws_total 1"));
        assert!(text.contains("lottery_ledger_ops_total{op=\"fund-client\"} 2"));
        assert!(text.contains("lottery_cache_hit_rate 0.5"));
        assert_eq!(a.compensations, 1);
        assert_eq!(a.compensation_revocations, 1);
        assert!(text.contains("lottery_compensation_revocations_total 1"));
        assert!(text.contains("lottery_compensation_weight{shard=\"1\"} 250"));
        assert_eq!(a.resource_draws.get("disk"), Some(&1));
        assert_eq!(a.resource_units.get("disk"), Some(&16));
        assert_eq!(a.broker_fundings, 2);
        assert_eq!(a.broker_refunds, 1);
        assert!(text.contains("lottery_resource_draws_total{resource=\"disk\"} 1"));
        assert!(text.contains("lottery_resource_units_total{resource=\"disk\"} 16"));
        assert!(text.contains("lottery_resource_wait_mean{resource=\"disk\"} 900"));
        assert!(text.contains("lottery_broker_weight{tenant=\"0\",resource=\"disk\"} 500"));
        assert!(text.contains("lottery_broker_refunds_total 1"));
        assert_eq!(a.structure_rebuilds, 1);
        assert!(text.contains("lottery_structure_rebuilds_total 1"));
        assert!(text.contains("lottery_structure_rebuild_ns_mean 5000"));
        assert_eq!(a.node_reports, 1);
        assert_eq!(a.grant_moves, 1);
        assert_eq!(a.grant_moved_amount, 250);
        assert_eq!(a.partition_heals, 1);
        assert!(text.contains("lottery_cluster_grant_moves_total 1"));
        assert!(text.contains("lottery_cluster_node_backlog{node=\"2\",tenant=\"0\"} 40"));
    }
}
