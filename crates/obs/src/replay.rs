//! Deterministic record/replay logs.
//!
//! A lottery draw is a pure function of the Park–Miller stream and the
//! ticket ledger, so a scheduling window is *replayable*: stamp the
//! audit log with everything the draw depends on, re-run, and the two
//! event streams must match bit for bit. This module owns the artifact:
//!
//! * [`ReplayHeader`] — the stamp: RNG state and draw counter at capture
//!   start, the winner-search structure, the shard count, the
//!   compensation switch, the quantum, and a ledger snapshot (currencies
//!   plus per-job tickets) together with the workload trace
//!   ([`TraceSpec`]) that drove the window.
//! * [`ReplayLog`] — header plus the captured event stream, serialized
//!   as JSONL: the header on line one, one event per following line
//!   (the [`crate::event::Event::to_json`] record format).
//! * [`first_divergence`] — the event-by-event diff. Two streams are
//!   compared under [`canonical`], which zeroes the one wall-clock
//!   measurement field in the schema (`StructureRebuild::rebuild_ns`);
//!   everything else — times, winners, draw values, compensation
//!   factors — must be identical, and the first mismatch is reported
//!   with both sides' context.
//!
//! The re-execution itself lives upstream (in the simulator, which owns
//! kernels and policies); this module stays plain data so `lottery-obs`
//! keeps its position at the bottom of the crate graph.

use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::json::{self, Value};

/// Replay log format version, written as the header's `replay` field.
pub const REPLAY_VERSION: u64 = 1;

/// Standalone trace corpus format version, written as the trace header's
/// `trace` field.
pub const TRACE_VERSION: u64 = 1;

/// One currency in the captured ledger: a subcurrency of the base,
/// backed by `amount` base tickets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurrencySnapshot {
    /// Currency name (unique within the capture).
    pub name: String,
    /// Base tickets backing the currency.
    pub amount: u64,
}

/// One job of the workload trace: when it arrives, what it demands, and
/// who pays for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceJob {
    /// Arrival time, in microseconds of simulated time.
    pub arrival_us: u64,
    /// Total CPU demand, in microseconds.
    pub service_us: u64,
    /// I/O mix: a sleep of this length splits the service demand in two
    /// (zero for a pure compute job).
    pub sleep_us: u64,
    /// Funding currency name (`"base"` or a [`CurrencySnapshot`] name).
    pub tenant: String,
    /// Tickets funding the job, denominated in the tenant currency.
    pub tickets: u64,
}

/// A workload trace: the currencies to create and the jobs to run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSpec {
    /// Subcurrencies of the base, created before any job arrives.
    pub currencies: Vec<CurrencySnapshot>,
    /// Jobs, spawned in `arrival_us` order (ties in listed order).
    pub jobs: Vec<TraceJob>,
}

impl TraceSpec {
    /// Serializes the trace as a standalone JSONL corpus file: a
    /// `{"trace":1,"currencies":[...]}` header line, then one job object
    /// per line. Unlike a [`ReplayLog`], a trace file carries no RNG
    /// state or scheduler configuration — it is a portable workload
    /// description that external tools can generate and captures can be
    /// driven from.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.jobs.len() * 96);
        let _ = write!(out, "{{\"trace\":{TRACE_VERSION},\"currencies\":[");
        for (i, c) in self.currencies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"amount\":{}}}",
                json::escape(&c.name),
                c.amount
            );
        }
        out.push_str("]}\n");
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "{{\"arrival_us\":{},\"service_us\":{},\"sleep_us\":{},\"tenant\":\"{}\",\"tickets\":{}}}",
                j.arrival_us,
                j.service_us,
                j.sleep_us,
                json::escape(&j.tenant),
                j.tickets
            );
        }
        out
    }

    /// Loads a trace from its JSONL corpus serialization (the inverse of
    /// [`TraceSpec::to_jsonl`]).
    ///
    /// # Errors
    ///
    /// The first non-empty line must be a version-1 trace header and
    /// every following non-empty line a job object; anything else is
    /// reported with its line number.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        let (_, first) = lines
            .by_ref()
            .find(|(_, l)| !l.trim().is_empty())
            .ok_or("empty trace file")?;
        let hv = json::parse(first).map_err(|e| format!("line 1: {e}"))?;
        let version = u64_field(&hv, "trace").map_err(|e| format!("line 1: {e}"))?;
        if version != TRACE_VERSION {
            return Err(format!(
                "unsupported trace version {version} (expected {TRACE_VERSION})"
            ));
        }
        let currencies = hv
            .get("currencies")
            .and_then(Value::as_array)
            .ok_or("line 1: trace header lacks a currencies array")?
            .iter()
            .map(|c| {
                Ok(CurrencySnapshot {
                    name: str_field(c, "name")?.to_string(),
                    amount: u64_field(c, "amount")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()
            .map_err(|e: String| format!("line 1: {e}"))?;
        let mut jobs = Vec::new();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let job = (|| {
                Ok::<TraceJob, String>(TraceJob {
                    arrival_us: u64_field(&v, "arrival_us")?,
                    service_us: u64_field(&v, "service_us")?,
                    sleep_us: u64_field(&v, "sleep_us")?,
                    tenant: str_field(&v, "tenant")?.to_string(),
                    tickets: u64_field(&v, "tickets")?,
                })
            })()
            .map_err(|e| format!("line {}: {e}", i + 1))?;
            jobs.push(job);
        }
        Ok(TraceSpec { currencies, jobs })
    }

    /// Whether a serialized document looks like a standalone trace corpus
    /// (as opposed to a [`ReplayLog`], whose header carries `replay`):
    /// cheap format sniffing for tools that accept either.
    pub fn sniff(text: &str) -> bool {
        let Some(first) = text.lines().find(|l| !l.trim().is_empty()) else {
            return false;
        };
        match json::parse(first) {
            Ok(v) => v.get("trace").is_some(),
            Err(_) => false,
        }
    }
}

/// The replay stamp: scheduler configuration, RNG state, and the ledger
/// snapshot a re-execution starts from.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayHeader {
    /// Park–Miller state at capture start. Re-seeding with this value
    /// restores the draw stream exactly.
    pub seed: u32,
    /// Lotteries already held at capture start (audit context: position
    /// of the capture within the scheduler's lifetime).
    pub draws: u64,
    /// Winner-search structure: `"list"`, `"tree"`, or `"alias"`.
    pub structure: String,
    /// Distributed shard count; `0` selects the uniprocessor kernel,
    /// `n > 0` an n-CPU machine with per-CPU shard trees.
    pub shards: u32,
    /// Whether compensation tickets (Section 4.5) were enabled.
    pub compensation: bool,
    /// Scheduler quantum, in microseconds.
    pub quantum_us: u64,
    /// Simulated end of the captured window, in microseconds.
    pub until_us: u64,
    /// The workload trace and ledger snapshot that produced the window.
    pub spec: TraceSpec,
}

impl ReplayHeader {
    /// Serializes the header as the one-line JSON object heading a
    /// replay log.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"replay\":{REPLAY_VERSION},\"seed\":{},\"draws\":{},\"structure\":\"{}\",\
             \"shards\":{},\"compensation\":{},\"quantum_us\":{},\"until_us\":{},\"currencies\":[",
            self.seed,
            self.draws,
            json::escape(&self.structure),
            self.shards,
            self.compensation,
            self.quantum_us,
            self.until_us,
        );
        for (i, c) in self.spec.currencies.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"amount\":{}}}",
                json::escape(&c.name),
                c.amount
            );
        }
        s.push_str("],\"jobs\":[");
        for (i, j) in self.spec.jobs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"arrival_us\":{},\"service_us\":{},\"sleep_us\":{},\"tenant\":\"{}\",\"tickets\":{}}}",
                j.arrival_us,
                j.service_us,
                j.sleep_us,
                json::escape(&j.tenant),
                j.tickets
            );
        }
        s.push_str("]}");
        s
    }

    /// Parses a header object (the inverse of [`ReplayHeader::to_json`]).
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let version = u64_field(v, "replay")?;
        if version != REPLAY_VERSION {
            return Err(format!(
                "unsupported replay log version {version} (expected {REPLAY_VERSION})"
            ));
        }
        let currencies = v
            .get("currencies")
            .and_then(Value::as_array)
            .ok_or("header lacks a currencies array")?
            .iter()
            .map(|c| {
                Ok(CurrencySnapshot {
                    name: str_field(c, "name")?.to_string(),
                    amount: u64_field(c, "amount")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let jobs = v
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or("header lacks a jobs array")?
            .iter()
            .map(|j| {
                Ok(TraceJob {
                    arrival_us: u64_field(j, "arrival_us")?,
                    service_us: u64_field(j, "service_us")?,
                    sleep_us: u64_field(j, "sleep_us")?,
                    tenant: str_field(j, "tenant")?.to_string(),
                    tickets: u64_field(j, "tickets")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ReplayHeader {
            seed: u32::try_from(u64_field(v, "seed")?).map_err(|_| "seed overflows u32")?,
            draws: u64_field(v, "draws")?,
            structure: str_field(v, "structure")?.to_string(),
            shards: u32::try_from(u64_field(v, "shards")?).map_err(|_| "shards overflows u32")?,
            compensation: v
                .get("compensation")
                .and_then(Value::as_bool)
                .ok_or("header lacks a compensation flag")?,
            quantum_us: u64_field(v, "quantum_us")?,
            until_us: u64_field(v, "until_us")?,
            spec: TraceSpec { currencies, jobs },
        })
    }
}

/// A captured window: the replay stamp plus the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayLog {
    /// The replay stamp.
    pub header: ReplayHeader,
    /// The captured events, oldest first.
    pub events: Vec<Event>,
}

impl ReplayLog {
    /// Serializes the log as JSONL: the header line, then one event per
    /// line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str(&self.header.to_json());
        out.push('\n');
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Loads a log from its JSONL serialization.
    ///
    /// # Errors
    ///
    /// The first line must be a version-1 replay header and every
    /// following non-empty line a parseable event record; anything else
    /// is reported with its line number.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        let (_, first) = lines
            .by_ref()
            .find(|(_, l)| !l.trim().is_empty())
            .ok_or("empty replay log")?;
        let hv = json::parse(first).map_err(|e| format!("line 1: {e}"))?;
        let header = ReplayHeader::from_json(&hv).map_err(|e| format!("line 1: {e}"))?;
        let mut events = Vec::new();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            events.push(Event::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(ReplayLog { header, events })
    }
}

/// The first point where a recorded and a regenerated stream disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the first divergent event (0-based position in the
    /// stream).
    pub index: usize,
    /// The recorded side at that index (`None`: the recording ended
    /// early).
    pub recorded: Option<Event>,
    /// The replayed side at that index (`None`: the replay ended early).
    pub replayed: Option<Event>,
}

/// Canonicalizes an event for divergence comparison: the one wall-clock
/// measurement field in the schema (`StructureRebuild::rebuild_ns`) is
/// zeroed, because a rebuild's duration is a property of the recording
/// machine, not of the schedule being audited. Every simulated-time and
/// decision field is kept verbatim.
pub fn canonical(mut e: Event) -> Event {
    if let EventKind::StructureRebuild { rebuild_ns, .. } = &mut e.kind {
        *rebuild_ns = 0;
    }
    e
}

/// Compares two event streams event by event (under [`canonical`]) and
/// returns the first divergence, or `None` when they are bit-identical.
///
/// A stream ending early diverges at its end: the missing side is
/// reported as `None`.
pub fn first_divergence(recorded: &[Event], replayed: &[Event]) -> Option<Divergence> {
    let n = recorded.len().max(replayed.len());
    for i in 0..n {
        let a = recorded.get(i).copied();
        let b = replayed.get(i).copied();
        if a.map(canonical) != b.map(canonical) {
            return Some(Divergence {
                index: i,
                recorded: a,
                replayed: b,
            });
        }
    }
    None
}

fn u64_field(v: &Value, name: &str) -> Result<u64, String> {
    let n = v
        .get(name)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("header field {name:?} missing or not a number"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!(
            "header field {name:?} is not a non-negative integer"
        ));
    }
    Ok(n as u64)
}

fn str_field<'v>(v: &'v Value, name: &str) -> Result<&'v str, String> {
    v.get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("header field {name:?} missing or not a string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ReplayHeader {
        ReplayHeader {
            seed: 12345,
            draws: 7,
            structure: "tree".into(),
            shards: 2,
            compensation: true,
            quantum_us: 100_000,
            until_us: 30_000_000,
            spec: TraceSpec {
                currencies: vec![
                    CurrencySnapshot {
                        name: "gold".into(),
                        amount: 200,
                    },
                    CurrencySnapshot {
                        name: "silver".into(),
                        amount: 100,
                    },
                ],
                jobs: vec![
                    TraceJob {
                        arrival_us: 0,
                        service_us: 5_000_000,
                        sleep_us: 0,
                        tenant: "gold".into(),
                        tickets: 100,
                    },
                    TraceJob {
                        arrival_us: 250_000,
                        service_us: 1_000_000,
                        sleep_us: 40_000,
                        tenant: "base".into(),
                        tickets: 300,
                    },
                ],
            },
        }
    }

    fn events() -> Vec<Event> {
        vec![
            Event {
                time_us: 0,
                kind: EventKind::ThreadSpawn { thread: 0 },
            },
            Event {
                time_us: 100_000,
                kind: EventKind::LotteryDraw {
                    structure: "tree",
                    entries: 2,
                    levels: 1,
                    total: 400.0,
                    winning: 123.456,
                    winner: 0,
                },
            },
            Event {
                time_us: 200_000,
                kind: EventKind::ThreadExit { thread: 0 },
            },
        ]
    }

    #[test]
    fn trace_round_trips_through_jsonl() {
        let spec = header().spec;
        let text = spec.to_jsonl();
        let back = TraceSpec::from_jsonl(&text).expect("trace parses");
        assert_eq!(back, spec);
    }

    #[test]
    fn trace_rejects_wrong_version() {
        let text = header()
            .spec
            .to_jsonl()
            .replace("\"trace\":1", "\"trace\":9");
        assert!(TraceSpec::from_jsonl(&text)
            .unwrap_err()
            .contains("version 9"));
    }

    #[test]
    fn trace_reports_bad_job_line_number() {
        let mut text = header().spec.to_jsonl();
        text.push_str("{\"arrival_us\":1}\n");
        let err = TraceSpec::from_jsonl(&text).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
    }

    #[test]
    fn sniff_tells_traces_from_replay_logs() {
        assert!(TraceSpec::sniff(&header().spec.to_jsonl()));
        assert!(!TraceSpec::sniff(&header().to_json()));
        assert!(!TraceSpec::sniff(""));
        assert!(!TraceSpec::sniff("not json"));
    }

    #[test]
    fn log_round_trips_through_jsonl() {
        let log = ReplayLog {
            header: header(),
            events: events(),
        };
        let text = log.to_jsonl();
        let back = ReplayLog::from_jsonl(&text).expect("log parses");
        assert_eq!(back, log);
    }

    #[test]
    fn header_rejects_wrong_version() {
        let mut text = header().to_json();
        text = text.replace("\"replay\":1", "\"replay\":99");
        let v = json::parse(&text).unwrap();
        assert!(ReplayHeader::from_json(&v)
            .unwrap_err()
            .contains("version 99"));
    }

    #[test]
    fn from_jsonl_reports_bad_event_line_number() {
        let mut text = header().to_json();
        text.push('\n');
        text.push_str("{\"t_us\":1,\"kind\":\"no-such-event\"}\n");
        let err = ReplayLog::from_jsonl(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        assert_eq!(first_divergence(&events(), &events()), None);
    }

    #[test]
    fn mutated_event_is_reported_at_its_index() {
        let recorded = events();
        let mut replayed = events();
        if let EventKind::LotteryDraw { winner, .. } = &mut replayed[1].kind {
            *winner = 1;
        }
        let d = first_divergence(&recorded, &replayed).expect("divergence found");
        assert_eq!(d.index, 1);
        assert_eq!(d.recorded, Some(recorded[1]));
        assert_eq!(d.replayed, Some(replayed[1]));
    }

    #[test]
    fn short_stream_diverges_at_its_end() {
        let recorded = events();
        let replayed = &recorded[..2];
        let d = first_divergence(&recorded, replayed).expect("divergence found");
        assert_eq!(d.index, 2);
        assert_eq!(d.recorded, Some(recorded[2]));
        assert_eq!(d.replayed, None);
    }

    #[test]
    fn rebuild_wall_clock_cost_is_not_a_divergence() {
        let a = vec![Event {
            time_us: 5,
            kind: EventKind::StructureRebuild {
                structure: "alias",
                clients: 10,
                stale: 2,
                rebuild_ns: 1234,
            },
        }];
        let mut b = a.clone();
        if let EventKind::StructureRebuild { rebuild_ns, .. } = &mut b[0].kind {
            *rebuild_ns = 99_999;
        }
        assert_eq!(first_divergence(&a, &b), None);
    }
}
