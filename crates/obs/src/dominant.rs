//! The dominant-share monitor: multi-resource fairness from one stream.
//!
//! When tenants contend on *different* resources, per-resource share
//! checks alone are misleading: a tenant can trail its entitlement on a
//! resource it barely uses while dominating the one it actually needs.
//! Following the dominant-resource view (and Dolev et al.'s "no justified
//! complaints" criterion), this monitor folds
//! [`EventKind::ResourceComplete`] and [`EventKind::BrokerFunding`] events
//! into per-tenant, per-resource observed shares, defines each tenant's
//! **dominant share** as its maximum observed share across resources, and
//! alarms when that dominant share drifts from the tenant's entitled
//! (grant-proportional) share. It also flags the *justified complaint*
//! case: a tenant below entitlement on every resource it touches.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;

#[derive(Debug, Clone, Default)]
struct TenantObs {
    entitlement: f64,
    /// Cumulative completed work units, by resource tag.
    units: BTreeMap<&'static str, f64>,
    /// Last broker-pushed funded weight, by resource tag.
    funded: BTreeMap<&'static str, f64>,
}

/// One (tenant, resource) observed-vs-entitled row.
#[derive(Debug, Clone, Copy)]
pub struct ResourceShareRow {
    /// Broker tenant index.
    pub tenant: u32,
    /// Resource tag (`"cpu"`, `"disk"`, `"mem"`, `"net"`).
    pub resource: &'static str,
    /// Cumulative work units observed for the tenant on this resource.
    pub units: f64,
    /// Observed share of the resource among registered tenants.
    pub observed: f64,
    /// Grant-proportional entitled share.
    pub entitled: f64,
    /// `observed - entitled`, signed.
    pub error: f64,
    /// Last broker-pushed funded weight (0 when never observed).
    pub funded_weight: f64,
}

/// Per-tenant dominant-share summary.
#[derive(Debug, Clone, Copy)]
pub struct TenantShareRow {
    /// Broker tenant index.
    pub tenant: u32,
    /// Grant-proportional entitled share.
    pub entitled: f64,
    /// Max observed share across resources with any activity.
    pub dominant_share: f64,
    /// The resource realizing the dominant share (`"-"` when idle).
    pub dominant_resource: &'static str,
    /// `dominant_share - entitled`, signed.
    pub drift: f64,
    /// Whether `|drift|` exceeded the tolerance.
    pub alarm: bool,
    /// Whether the tenant sits below entitlement (beyond tolerance) on
    /// *every* active resource — a justified complaint.
    pub complaint: bool,
}

/// A dominant-share report over every registered tenant.
#[derive(Debug, Clone, Default)]
pub struct DominantShareReport {
    /// Per-(tenant, resource) rows, tenant-major.
    pub rows: Vec<ResourceShareRow>,
    /// Per-tenant dominant-share summaries.
    pub tenants: Vec<TenantShareRow>,
    /// Max `|error|` across all rows.
    pub max_abs_error: f64,
}

impl DominantShareReport {
    /// Whether any tenant's dominant share drifted past tolerance.
    pub fn any_alarm(&self) -> bool {
        self.tenants.iter().any(|t| t.alarm)
    }

    /// Whether any tenant has a justified complaint.
    pub fn any_complaint(&self) -> bool {
        self.tenants.iter().any(|t| t.complaint)
    }

    /// Renders the report as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>12} {:>10} {:>10} {:>9} {:>10}",
            "tenant", "resource", "units", "observed", "entitled", "error", "funded"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>6} {:>8} {:>12.0} {:>10.4} {:>10.4} {:>+9.4} {:>10.1}",
                r.tenant, r.resource, r.units, r.observed, r.entitled, r.error, r.funded_weight
            );
        }
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "tenant {} dominant={:.4} ({}) entitled={:.4} drift={:+.4}{}{}",
                t.tenant,
                t.dominant_share,
                t.dominant_resource,
                t.entitled,
                t.drift,
                if t.alarm { " ALARM" } else { "" },
                if t.complaint { " COMPLAINT" } else { "" }
            );
        }
        out
    }
}

/// Derives per-tenant, per-resource share drift from the event stream.
///
/// Register tenants with [`DominantShareMonitor::set_entitlement`] (grant
/// units; entitled shares normalize over the registered set), bind each
/// resource scheduler's local client index to its tenant with
/// [`DominantShareMonitor::bind_client`], attach to a [`crate::ProbeBus`],
/// and read [`DominantShareMonitor::report`]. Resources without probe
/// coverage (CPU time, resident frames) can be fed directly through
/// [`DominantShareMonitor::record_units`].
#[derive(Debug)]
pub struct DominantShareMonitor {
    tenants: BTreeMap<u32, TenantObs>,
    /// (resource tag, scheduler-local client index) -> tenant index.
    bind: BTreeMap<(&'static str, u32), u32>,
    tolerance: f64,
}

impl Default for DominantShareMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl DominantShareMonitor {
    /// Creates a monitor with the 5% drift tolerance the broker
    /// experiment asserts.
    pub fn new() -> Self {
        Self::with_tolerance(0.05)
    }

    /// Creates a monitor alarming when `|dominant - entitled| > tolerance`.
    pub fn with_tolerance(tolerance: f64) -> Self {
        Self {
            tenants: BTreeMap::new(),
            bind: BTreeMap::new(),
            tolerance,
        }
    }

    /// Registers (or updates) a tenant's entitlement in grant units.
    pub fn set_entitlement(&mut self, tenant: u32, grant: f64) {
        self.tenants.entry(tenant).or_default().entitlement = grant;
    }

    /// Maps a resource scheduler's local client index onto a tenant, so
    /// `ResourceComplete` events attribute work to the right grant.
    pub fn bind_client(&mut self, resource: &'static str, client: u32, tenant: u32) {
        self.bind.insert((resource, client), tenant);
    }

    /// Adds observed work units for a tenant on a resource directly (for
    /// resources measured out-of-band, e.g. CPU microseconds or resident
    /// frame-steps).
    pub fn record_units(&mut self, tenant: u32, resource: &'static str, units: f64) {
        if let Some(obs) = self.tenants.get_mut(&tenant) {
            *obs.units.entry(resource).or_insert(0.0) += units;
        }
    }

    /// Computes the dominant-share report over everything observed so far.
    pub fn report(&self) -> DominantShareReport {
        let total_grant: f64 = self.tenants.values().map(|t| t.entitlement).sum();
        let resources: BTreeSet<&'static str> = self
            .tenants
            .values()
            .flat_map(|t| t.units.keys().chain(t.funded.keys()).copied())
            .collect();
        let mut resource_totals: BTreeMap<&'static str, f64> = BTreeMap::new();
        for obs in self.tenants.values() {
            for (&r, &u) in &obs.units {
                *resource_totals.entry(r).or_insert(0.0) += u;
            }
        }
        let mut rows = Vec::new();
        let mut tenants = Vec::new();
        let mut max_abs_error: f64 = 0.0;
        for (&tenant, obs) in &self.tenants {
            let entitled = if total_grant > 0.0 {
                obs.entitlement / total_grant
            } else {
                0.0
            };
            let mut dominant_share = 0.0;
            let mut dominant_resource = "-";
            let mut active = 0u32;
            let mut below_everywhere = true;
            for &r in &resources {
                let units = obs.units.get(r).copied().unwrap_or(0.0);
                let total = resource_totals.get(r).copied().unwrap_or(0.0);
                let observed = if total > 0.0 { units / total } else { 0.0 };
                let error = observed - entitled;
                if total > 0.0 {
                    active += 1;
                    if observed > dominant_share {
                        dominant_share = observed;
                        dominant_resource = r;
                    }
                    if error >= -self.tolerance {
                        below_everywhere = false;
                    }
                    max_abs_error = max_abs_error.max(error.abs());
                }
                rows.push(ResourceShareRow {
                    tenant,
                    resource: r,
                    units,
                    observed,
                    entitled,
                    error,
                    funded_weight: obs.funded.get(r).copied().unwrap_or(0.0),
                });
            }
            let drift = dominant_share - entitled;
            tenants.push(TenantShareRow {
                tenant,
                entitled,
                dominant_share,
                dominant_resource,
                drift,
                alarm: active > 0 && drift.abs() > self.tolerance,
                complaint: active > 0 && below_everywhere,
            });
        }
        DominantShareReport {
            rows,
            tenants,
            max_abs_error,
        }
    }
}

impl Recorder for DominantShareMonitor {
    fn record(&mut self, event: &Event) {
        match event.kind {
            EventKind::ResourceComplete {
                resource,
                client,
                units,
                ..
            } => {
                if let Some(&tenant) = self.bind.get(&(resource, client)) {
                    self.record_units(tenant, resource, units as f64);
                }
            }
            EventKind::BrokerFunding {
                tenant,
                resource,
                weight,
                ..
            } => {
                if let Some(obs) = self.tenants.get_mut(&tenant) {
                    obs.funded.insert(resource, weight);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(m: &mut DominantShareMonitor, resource: &'static str, client: u32, units: u64) {
        m.record(&Event {
            time_us: 0,
            kind: EventKind::ResourceComplete {
                resource,
                client,
                units,
                wait: 0,
            },
        });
    }

    fn two_tenant_monitor() -> DominantShareMonitor {
        let mut m = DominantShareMonitor::new();
        m.set_entitlement(0, 2000.0);
        m.set_entitlement(1, 1000.0);
        m.bind_client("disk", 0, 0);
        m.bind_client("disk", 1, 1);
        m.bind_client("net", 0, 0);
        m.bind_client("net", 1, 1);
        m
    }

    #[test]
    fn proportional_feed_stays_quiet() {
        let mut m = two_tenant_monitor();
        complete(&mut m, "disk", 0, 660);
        complete(&mut m, "disk", 1, 340);
        complete(&mut m, "net", 0, 670);
        complete(&mut m, "net", 1, 330);
        m.record_units(0, "cpu", 6_600.0);
        m.record_units(1, "cpu", 3_400.0);
        let report = m.report();
        assert!(!report.any_alarm(), "{}", report.to_text());
        assert!(!report.any_complaint());
        let gold = &report.tenants[0];
        assert!((gold.entitled - 2.0 / 3.0).abs() < 1e-12);
        assert!(gold.dominant_share > 0.6 && gold.dominant_share < 0.7);
    }

    #[test]
    fn dominant_drift_trips_alarm() {
        let mut m = two_tenant_monitor();
        // Tenant 1 (entitled to 1/3) dominates disk outright.
        complete(&mut m, "disk", 0, 200);
        complete(&mut m, "disk", 1, 800);
        let report = m.report();
        let silver = report.tenants.iter().find(|t| t.tenant == 1).unwrap();
        assert!(silver.alarm, "{}", report.to_text());
        assert_eq!(silver.dominant_resource, "disk");
        assert!(silver.drift > 0.4);
    }

    #[test]
    fn starved_on_every_resource_is_a_justified_complaint() {
        let mut m = two_tenant_monitor();
        // Tenant 1 entitled to 1/3 but observed ~10% on both resources.
        complete(&mut m, "disk", 0, 900);
        complete(&mut m, "disk", 1, 100);
        complete(&mut m, "net", 0, 890);
        complete(&mut m, "net", 1, 110);
        let report = m.report();
        let silver = report.tenants.iter().find(|t| t.tenant == 1).unwrap();
        assert!(silver.complaint, "{}", report.to_text());
        let gold = report.tenants.iter().find(|t| t.tenant == 0).unwrap();
        assert!(!gold.complaint);
    }

    #[test]
    fn dominating_one_resource_is_not_a_complaint() {
        let mut m = two_tenant_monitor();
        // Tenant 1 trails on disk but dominates net: no justified
        // complaint (it gets its share where it wants it), though the
        // dominant-share drift alarm fires.
        complete(&mut m, "disk", 0, 950);
        complete(&mut m, "disk", 1, 50);
        complete(&mut m, "net", 0, 100);
        complete(&mut m, "net", 1, 900);
        let report = m.report();
        let silver = report.tenants.iter().find(|t| t.tenant == 1).unwrap();
        assert!(!silver.complaint, "{}", report.to_text());
        assert!(silver.alarm);
        assert_eq!(silver.dominant_resource, "net");
    }

    #[test]
    fn funding_events_land_in_rows() {
        let mut m = two_tenant_monitor();
        m.record(&Event {
            time_us: 0,
            kind: EventKind::BrokerFunding {
                tenant: 0,
                resource: "disk",
                weight: 500.0,
                refunded: false,
            },
        });
        complete(&mut m, "disk", 0, 10);
        let report = m.report();
        let row = report
            .rows
            .iter()
            .find(|r| r.tenant == 0 && r.resource == "disk")
            .unwrap();
        assert_eq!(row.funded_weight, 500.0);
    }

    #[test]
    fn ignores_unbound_clients_and_unregistered_tenants() {
        let mut m = two_tenant_monitor();
        complete(&mut m, "disk", 9, 100);
        m.record_units(7, "cpu", 100.0);
        let report = m.report();
        assert!(report.rows.iter().all(|r| r.units == 0.0));
    }
}
