//! The flight recorder: a bounded ring of recent events plus exporters.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;
use crate::replay::{ReplayHeader, ReplayLog};

/// Chrome-trace process id carrying instant events (wakes, draws, RPC
/// endpoints). Instants get their own track: putting them on `pid: 0`
/// would merge them onto CPU 0's slice track in Perfetto and misread as
/// CPU-0 activity on any multiprocessor capture.
pub const INSTANT_TRACK: u32 = 1_000_000;

/// A bounded ring buffer of probe events.
///
/// Keeps the most recent `capacity` events, counting evictions, and
/// replays its contents as JSONL records or a Chrome `trace_event`
/// timeline.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        Self {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards every retained event (the eviction counter survives).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Serializes the retained events as JSONL: one JSON object per line,
    /// oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.ring.len() * 96);
        for event in &self.ring {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Packages the retained events (oldest first) with a replay stamp
    /// into a [`ReplayLog`], ready for [`ReplayLog::to_jsonl`].
    ///
    /// The header is the scheduler's business — RNG state, structure,
    /// ledger snapshot — so the caller supplies it; the recorder
    /// contributes the captured window.
    pub fn to_replay_log(&self, header: ReplayHeader) -> ReplayLog {
        ReplayLog {
            header,
            events: self.ring.iter().copied().collect(),
        }
    }

    /// Serializes the retained events as a Chrome `trace_event` document
    /// (load it at `chrome://tracing` or in Perfetto).
    ///
    /// Dispatch→quantum-end pairs become complete (`"X"`) slices on a
    /// per-CPU track; wakes, draws, and RPC endpoints become instants on
    /// the dedicated [`INSTANT_TRACK`]; dispatches still in flight when
    /// the ring is dumped become open (`"B"`) slices so the tail of a
    /// capture stays visible.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        // In-flight dispatches: thread -> (start time, cpu, queue depth).
        let mut running: HashMap<u32, (u64, u32, u32)> = HashMap::new();
        for event in &self.ring {
            let t = event.time_us;
            match event.kind {
                EventKind::Dispatch {
                    thread,
                    cpu,
                    queue_depth,
                    ..
                } => {
                    running.insert(thread, (t, cpu, queue_depth));
                }
                EventKind::QuantumEnd {
                    thread,
                    cpu,
                    reason,
                    ..
                } => {
                    let (start, start_cpu, depth) = running.remove(&thread).unwrap_or((t, cpu, 0));
                    let mut s = String::with_capacity(128);
                    let _ = write!(
                        s,
                        "{{\"name\":\"thread {thread}\",\"ph\":\"X\",\"ts\":{start},\"dur\":{},\"pid\":{start_cpu},\"tid\":{thread},\"args\":{{\"reason\":\"{reason}\",\"queue_depth\":{depth}}}}}",
                        t.saturating_sub(start)
                    );
                    push(s, &mut first);
                }
                EventKind::Wake { thread } => {
                    push(
                        format!(
                            "{{\"name\":\"wake\",\"ph\":\"i\",\"ts\":{t},\"pid\":{INSTANT_TRACK},\"tid\":{thread},\"s\":\"t\"}}"
                        ),
                        &mut first,
                    );
                }
                EventKind::LotteryDraw {
                    structure, winner, ..
                } => {
                    push(
                        format!(
                            "{{\"name\":\"draw:{structure}\",\"ph\":\"i\",\"ts\":{t},\"pid\":{INSTANT_TRACK},\"tid\":{winner},\"s\":\"t\"}}"
                        ),
                        &mut first,
                    );
                }
                EventKind::RpcDeliver { client, server } => {
                    push(
                        format!(
                            "{{\"name\":\"rpc-deliver:{client}\",\"ph\":\"i\",\"ts\":{t},\"pid\":{INSTANT_TRACK},\"tid\":{server},\"s\":\"t\"}}"
                        ),
                        &mut first,
                    );
                }
                EventKind::RpcReply { client, server } => {
                    push(
                        format!(
                            "{{\"name\":\"rpc-reply:{client}\",\"ph\":\"i\",\"ts\":{t},\"pid\":{INSTANT_TRACK},\"tid\":{server},\"s\":\"t\"}}"
                        ),
                        &mut first,
                    );
                }
                _ => {}
            }
        }
        // Dispatches with no quantum-end in the ring are still on-CPU at
        // dump time. Emit them as open ("B") slices at their start so
        // the capture's tail is visible instead of silently dropped;
        // sort for a deterministic document.
        let mut open: Vec<(u32, (u64, u32, u32))> = running.into_iter().collect();
        open.sort_unstable();
        for (thread, (start, cpu, depth)) in open {
            push(
                format!(
                    "{{\"name\":\"thread {thread}\",\"ph\":\"B\",\"ts\":{start},\"pid\":{cpu},\"tid\":{thread},\"args\":{{\"queue_depth\":{depth}}}}}"
                ),
                &mut first,
            );
        }
        out.push_str("]}");
        out
    }
}

impl Recorder for FlightRecorder {
    fn record(&mut self, event: &Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(time_us: u64, kind: EventKind) -> Event {
        Event { time_us, kind }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut f = FlightRecorder::new(2);
        f.record(&ev(1, EventKind::Wake { thread: 0 }));
        f.record(&ev(2, EventKind::Wake { thread: 1 }));
        f.record(&ev(3, EventKind::Wake { thread: 2 }));
        assert_eq!(f.len(), 2);
        assert_eq!(f.dropped(), 1);
        assert_eq!(f.events().next().unwrap().time_us, 2);
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let mut f = FlightRecorder::new(8);
        f.record(&ev(
            10,
            EventKind::Dispatch {
                thread: 0,
                cpu: 0,
                wait_us: 5,
                queue_depth: 1,
            },
        ));
        f.record(&ev(20, EventKind::LedgerOp { op: "issue" }));
        let jsonl = f.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            json::parse(line).expect("line parses");
        }
    }

    #[test]
    fn chrome_trace_pairs_dispatch_with_quantum_end() {
        let mut f = FlightRecorder::new(8);
        f.record(&ev(
            100,
            EventKind::Dispatch {
                thread: 3,
                cpu: 1,
                wait_us: 0,
                queue_depth: 2,
            },
        ));
        f.record(&ev(
            400,
            EventKind::QuantumEnd {
                thread: 3,
                cpu: 1,
                reason: "quantum-expired",
                used_us: 300,
            },
        ));
        f.record(&ev(450, EventKind::Wake { thread: 5 }));
        let doc = f.to_chrome_trace();
        let v = json::parse(&doc).expect("chrome trace parses");
        let events = v
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .unwrap();
        assert_eq!(events.len(), 2);
        let slice = &events[0];
        assert_eq!(slice.get("ph").and_then(json::Value::as_str), Some("X"));
        assert_eq!(slice.get("ts").and_then(json::Value::as_f64), Some(100.0));
        assert_eq!(slice.get("dur").and_then(json::Value::as_f64), Some(300.0));
        assert_eq!(slice.get("pid").and_then(json::Value::as_f64), Some(1.0));
    }

    #[test]
    fn instants_live_on_their_own_track() {
        let mut f = FlightRecorder::new(8);
        f.record(&ev(10, EventKind::Wake { thread: 5 }));
        f.record(&ev(
            20,
            EventKind::LotteryDraw {
                structure: "tree",
                entries: 2,
                levels: 1,
                total: 300.0,
                winning: 10.0,
                winner: 1,
            },
        ));
        f.record(&ev(
            30,
            EventKind::RpcDeliver {
                client: 1,
                server: 2,
            },
        ));
        f.record(&ev(
            40,
            EventKind::RpcReply {
                client: 1,
                server: 2,
            },
        ));
        let v = json::parse(&f.to_chrome_trace()).unwrap();
        let events = v
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .unwrap();
        assert_eq!(events.len(), 4);
        for e in events {
            assert_eq!(e.get("ph").and_then(json::Value::as_str), Some("i"));
            assert_eq!(
                e.get("pid").and_then(json::Value::as_f64),
                Some(f64::from(INSTANT_TRACK)),
                "instants must not share a pid with CPU slice tracks"
            );
        }
    }

    #[test]
    fn in_flight_dispatches_become_open_slices() {
        let mut f = FlightRecorder::new(8);
        f.record(&ev(
            100,
            EventKind::Dispatch {
                thread: 3,
                cpu: 1,
                wait_us: 0,
                queue_depth: 2,
            },
        ));
        f.record(&ev(
            150,
            EventKind::Dispatch {
                thread: 4,
                cpu: 0,
                wait_us: 0,
                queue_depth: 1,
            },
        ));
        f.record(&ev(
            400,
            EventKind::QuantumEnd {
                thread: 3,
                cpu: 1,
                reason: "quantum-expired",
                used_us: 300,
            },
        ));
        // Thread 4 never ends its quantum inside the window.
        let v = json::parse(&f.to_chrome_trace()).unwrap();
        let events = v
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .unwrap();
        assert_eq!(events.len(), 2);
        let open = events
            .iter()
            .find(|e| e.get("ph").and_then(json::Value::as_str) == Some("B"))
            .expect("open slice for the in-flight dispatch");
        assert_eq!(open.get("ts").and_then(json::Value::as_f64), Some(150.0));
        assert_eq!(open.get("tid").and_then(json::Value::as_f64), Some(4.0));
        assert_eq!(open.get("pid").and_then(json::Value::as_f64), Some(0.0));
    }

    #[test]
    fn to_replay_log_carries_ring_and_header() {
        use crate::replay::{ReplayHeader, TraceSpec};
        let mut f = FlightRecorder::new(4);
        f.record(&ev(1, EventKind::ThreadSpawn { thread: 0 }));
        f.record(&ev(2, EventKind::ThreadExit { thread: 0 }));
        let header = ReplayHeader {
            seed: 42,
            draws: 0,
            structure: "list".into(),
            shards: 0,
            compensation: true,
            quantum_us: 100_000,
            until_us: 1_000_000,
            spec: TraceSpec::default(),
        };
        let log = f.to_replay_log(header.clone());
        assert_eq!(log.header, header);
        assert_eq!(log.events.len(), 2);
        let back = crate::replay::ReplayLog::from_jsonl(&log.to_jsonl()).unwrap();
        assert_eq!(back, log);
    }
}
