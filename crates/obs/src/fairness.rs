//! The fairness-drift monitor: continuous Figure-4 error statistics.
//!
//! The paper quantifies fairness as observed-vs-entitled iteration ratios
//! over fixed windows (Figure 4) and notes that lottery wins are binomially
//! distributed: over `n` lotteries a client holding share `p` wins `np`
//! times with standard deviation `sqrt(np(1-p))` (Section 3). The monitor
//! applies both continuously: it consumes dispatch/draw events, compares
//! each registered client's observed win and CPU shares against its
//! entitled share, and raises an alarm when the win count's binomial
//! z-score leaves the expected band — a statistically calibrated "this
//! scheduler is drifting" signal rather than an arbitrary threshold.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;

#[derive(Debug, Clone, Copy)]
struct ClientObs {
    entitlement: f64,
    wins: u64,
    cpu_us: u64,
    /// Most recently granted compensation factor (Section 4.5). Sticky
    /// across revocations: a compensated client holds its factor only
    /// between waking and its next win, so the *recurring* grant — not the
    /// instantaneous state — is what predicts its steady-state win rate.
    comp_factor: f64,
}

impl Default for ClientObs {
    fn default() -> Self {
        Self {
            entitlement: 0.0,
            wins: 0,
            cpu_us: 0,
            comp_factor: 1.0,
        }
    }
}

/// Per-client drift against entitlement.
#[derive(Debug, Clone, Copy)]
pub struct DriftRow {
    /// Thread index.
    pub thread: u32,
    /// Entitled share of the machine in `[0, 1]`: *compensated* weight
    /// (tickets × last granted compensation factor) over the total
    /// compensated weight of the registered set. Win frequency — not CPU
    /// share — is what compensation inflates, so the binomial test must
    /// compare against the compensated share.
    pub entitled: f64,
    /// The compensation factor folded into `entitled` (1 when never
    /// compensated).
    pub comp_factor: f64,
    /// Observed share of lottery wins.
    pub win_share: f64,
    /// Observed share of CPU time.
    pub cpu_share: f64,
    /// `cpu_share - entitled` (Figure 4's error, signed).
    pub error: f64,
    /// Binomial z-score of the win count: `(w - np) / sqrt(np(1-p))`.
    pub z: f64,
    /// Whether `|z|` exceeded the alarm threshold.
    pub alarm: bool,
}

/// A fairness report over every registered client.
#[derive(Debug, Clone, Default)]
pub struct FairnessReport {
    /// Per-client rows, by thread index.
    pub rows: Vec<DriftRow>,
    /// Total dispatches observed across registered clients.
    pub total_wins: u64,
    /// Total CPU microseconds observed across registered clients.
    pub total_cpu_us: u64,
    /// Mean of `|error|` across clients.
    pub mean_abs_error: f64,
    /// Max of `|error|` across clients.
    pub max_abs_error: f64,
}

impl FairnessReport {
    /// Whether any client's z-score tripped the alarm.
    pub fn any_alarm(&self) -> bool {
        self.rows.iter().any(|r| r.alarm)
    }

    /// Renders the report as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>10} {:>10} {:>9} {:>7}  alarm",
            "thread", "entitled", "win-share", "cpu-share", "error", "z"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>6} {:>10.4} {:>10.4} {:>10.4} {:>+9.4} {:>+7.2}  {}",
                r.thread,
                r.entitled,
                r.win_share,
                r.cpu_share,
                r.error,
                r.z,
                if r.alarm { "YES" } else { "-" }
            );
        }
        let _ = writeln!(
            out,
            "wins={} cpu_us={} mean|err|={:.4} max|err|={:.4}",
            self.total_wins, self.total_cpu_us, self.mean_abs_error, self.max_abs_error
        );
        out
    }
}

/// Derives observed-vs-entitled share drift from the event stream.
///
/// Register each client of interest with [`FairnessMonitor::set_entitlement`]
/// (in ticket units; shares are normalized over the registered set), attach
/// the monitor to a [`crate::ProbeBus`], run, then read
/// [`FairnessMonitor::report`]. Unregistered threads are ignored.
#[derive(Debug)]
pub struct FairnessMonitor {
    clients: BTreeMap<u32, ClientObs>,
    alarm_z: f64,
}

impl Default for FairnessMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl FairnessMonitor {
    /// Creates a monitor with the conventional 3-sigma alarm threshold.
    pub fn new() -> Self {
        Self::with_alarm_z(3.0)
    }

    /// Creates a monitor alarming when `|z| > alarm_z`.
    pub fn with_alarm_z(alarm_z: f64) -> Self {
        Self {
            clients: BTreeMap::new(),
            alarm_z,
        }
    }

    /// Registers (or updates) a client's entitlement in ticket units.
    ///
    /// Pass the client's base-unit funding; shares are normalized over all
    /// registered clients at report time, so any consistent unit works.
    pub fn set_entitlement(&mut self, thread: u32, tickets: f64) {
        self.clients.entry(thread).or_default().entitlement = tickets;
    }

    /// Removes a client from the registered set.
    pub fn remove(&mut self, thread: u32) {
        self.clients.remove(&thread);
    }

    /// Resets observed wins and CPU while keeping entitlements (e.g. after
    /// a workload change re-levels entitled shares).
    pub fn reset_observations(&mut self) {
        for obs in self.clients.values_mut() {
            obs.wins = 0;
            obs.cpu_us = 0;
        }
    }

    /// Computes the drift report over everything observed so far.
    pub fn report(&self) -> FairnessReport {
        // Entitlement is computed from *compensated* weight: a client's
        // registered tickets times its recurring compensation factor.
        let total_tickets: f64 = self
            .clients
            .values()
            .map(|c| c.entitlement * c.comp_factor)
            .sum();
        let total_wins: u64 = self.clients.values().map(|c| c.wins).sum();
        let total_cpu: u64 = self.clients.values().map(|c| c.cpu_us).sum();
        let mut rows = Vec::with_capacity(self.clients.len());
        for (&thread, obs) in &self.clients {
            let entitled = if total_tickets > 0.0 {
                obs.entitlement * obs.comp_factor / total_tickets
            } else {
                0.0
            };
            let win_share = if total_wins > 0 {
                obs.wins as f64 / total_wins as f64
            } else {
                0.0
            };
            let cpu_share = if total_cpu > 0 {
                obs.cpu_us as f64 / total_cpu as f64
            } else {
                0.0
            };
            let n = total_wins as f64;
            let variance = n * entitled * (1.0 - entitled);
            let z = if variance > 0.0 {
                (obs.wins as f64 - n * entitled) / variance.sqrt()
            } else {
                0.0
            };
            rows.push(DriftRow {
                thread,
                entitled,
                comp_factor: obs.comp_factor,
                win_share,
                cpu_share,
                error: cpu_share - entitled,
                z,
                alarm: z.abs() > self.alarm_z,
            });
        }
        let abs_errors: Vec<f64> = rows.iter().map(|r| r.error.abs()).collect();
        let mean_abs_error = if abs_errors.is_empty() {
            0.0
        } else {
            abs_errors.iter().sum::<f64>() / abs_errors.len() as f64
        };
        let max_abs_error = abs_errors.iter().cloned().fold(0.0, f64::max);
        FairnessReport {
            rows,
            total_wins,
            total_cpu_us: total_cpu,
            mean_abs_error,
            max_abs_error,
        }
    }
}

impl Recorder for FairnessMonitor {
    fn record(&mut self, event: &Event) {
        match event.kind {
            EventKind::Dispatch { thread, .. } => {
                if let Some(obs) = self.clients.get_mut(&thread) {
                    obs.wins += 1;
                }
            }
            EventKind::QuantumEnd {
                thread, used_us, ..
            } => {
                if let Some(obs) = self.clients.get_mut(&thread) {
                    obs.cpu_us += used_us;
                }
            }
            EventKind::Compensation { thread, factor, .. } => {
                if let Some(obs) = self.clients.get_mut(&thread) {
                    obs.comp_factor = factor;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(m: &mut FairnessMonitor, thread: u32, wins: u64, us_per_win: u64) {
        for _ in 0..wins {
            m.record(&Event {
                time_us: 0,
                kind: EventKind::Dispatch {
                    thread,
                    cpu: 0,
                    wait_us: 0,
                    queue_depth: 0,
                },
            });
            m.record(&Event {
                time_us: 0,
                kind: EventKind::QuantumEnd {
                    thread,
                    cpu: 0,
                    reason: "quantum-expired",
                    used_us: us_per_win,
                },
            });
        }
    }

    #[test]
    fn proportional_feed_stays_quiet() {
        let mut m = FairnessMonitor::new();
        m.set_entitlement(0, 300.0);
        m.set_entitlement(1, 100.0);
        feed(&mut m, 0, 7_500, 100);
        feed(&mut m, 1, 2_500, 100);
        let report = m.report();
        assert!(!report.any_alarm(), "{}", report.to_text());
        assert!((report.rows[0].entitled - 0.75).abs() < 1e-12);
        assert!((report.rows[0].win_share - 0.75).abs() < 1e-12);
        assert!(report.mean_abs_error < 1e-9);
    }

    #[test]
    fn starved_client_trips_binomial_alarm() {
        let mut m = FairnessMonitor::new();
        m.set_entitlement(0, 100.0);
        m.set_entitlement(1, 100.0);
        // Entitled to half; observed 10% — far outside 3 sigma at n=1000.
        feed(&mut m, 0, 900, 100);
        feed(&mut m, 1, 100, 100);
        let report = m.report();
        assert!(report.any_alarm());
        let starved = report.rows.iter().find(|r| r.thread == 1).unwrap();
        assert!(starved.z < -3.0, "z = {}", starved.z);
        assert!(starved.error < -0.3);
    }

    #[test]
    fn compensated_client_entitlement_tracks_compensated_weight() {
        let mut m = FairnessMonitor::new();
        m.set_entitlement(0, 100.0);
        m.set_entitlement(1, 100.0);
        // Thread 1 is I/O-bound and recurrently granted a 4x compensation
        // factor: its win share legitimately runs at 4x its ticket share.
        m.record(&Event {
            time_us: 0,
            kind: EventKind::Compensation {
                thread: 1,
                factor: 4.0,
                shard: 0,
            },
        });
        // Revocation at dispatch must not reset the recurring factor.
        m.record(&Event {
            time_us: 1,
            kind: EventKind::CompensationRevoked {
                thread: 1,
                shard: 0,
            },
        });
        feed(&mut m, 0, 2_000, 100);
        feed(&mut m, 1, 8_000, 25);
        let report = m.report();
        let io = report.rows.iter().find(|r| r.thread == 1).unwrap();
        assert!((io.entitled - 0.8).abs() < 1e-12, "{}", report.to_text());
        assert_eq!(io.comp_factor, 4.0);
        assert!(!report.any_alarm(), "{}", report.to_text());
    }

    #[test]
    fn ignores_unregistered_threads() {
        let mut m = FairnessMonitor::new();
        m.set_entitlement(0, 100.0);
        feed(&mut m, 9, 50, 100);
        let report = m.report();
        assert_eq!(report.total_wins, 0);
    }
}
