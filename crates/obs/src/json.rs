//! A dependency-free JSON writer/parser.
//!
//! The build environment is offline (no serde), so the exporters and the
//! `BENCH_*.json` schema checks hand-roll the little JSON they need:
//! [`escape`] and [`number`] for writing, and [`parse`] — a small
//! recursive-descent parser producing a [`Value`] tree — for reading.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a valid JSON number.
///
/// JSON has no NaN/Infinity; both map to `null`-safe `0`, and integral
/// values print without a fraction.
pub fn number(x: f64) -> String {
    if !x.is_finite() {
        return "0".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = r#"{"name":"dispatch","unit":"ns","results":[{"id":"a/1","median_ns":217.25,"samples":11},{"id":"b","ok":true,"extra":null}]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("dispatch"));
        let results = v.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("median_ns").and_then(Value::as_f64),
            Some(217.25)
        );
        assert_eq!(results[1].get("extra"), Some(&Value::Null));
    }

    #[test]
    fn escapes_and_unescapes() {
        let original = "he said \"hi\"\nthen\tleft\\";
        let doc = format!("{{\"s\":\"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(parse(&number(1234.0625)).unwrap().as_f64(), Some(1234.0625));
    }
}
