//! Event sinks for the probe bus.

use std::sync::{Arc, Mutex};

use crate::event::Event;

/// A probe-event sink.
///
/// Recorders are driven synchronously from the emitting thread; they must
/// be cheap and must never call back into the instrumented layers.
pub trait Recorder {
    /// Consumes one event.
    fn record(&mut self, event: &Event);
}

/// A recorder that discards everything.
///
/// Attaching it keeps the bus *enabled* — every probe point still builds
/// its payload — which is exactly what the overhead benchmarks need to
/// price the bus machinery separately from any real sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopRecorder;

impl Recorder for NopRecorder {
    fn record(&mut self, _event: &Event) {}
}

/// A shared, cloneable handle around a recorder.
///
/// The bus owns its recorders as boxed trait objects; wrapping a recorder
/// in `Shared` lets the caller keep a handle for reading results back out
/// after (or during) a run while a clone lives on the bus.
#[derive(Debug, Default)]
pub struct Shared<R>(Arc<Mutex<R>>);

impl<R> Clone for Shared<R> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<R> Shared<R> {
    /// Wraps a recorder for shared access.
    pub fn new(recorder: R) -> Self {
        Self(Arc::new(Mutex::new(recorder)))
    }

    /// Runs `f` with exclusive access to the recorder.
    pub fn with<T>(&self, f: impl FnOnce(&mut R) -> T) -> T {
        let mut guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }
}

impl<R: Recorder> Recorder for Shared<R> {
    fn record(&mut self, event: &Event) {
        self.with(|r| r.record(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn shared_handle_sees_recorded_events() {
        struct Count(u64);
        impl Recorder for Count {
            fn record(&mut self, _: &Event) {
                self.0 += 1;
            }
        }
        let shared = Shared::new(Count(0));
        let mut on_bus = shared.clone();
        on_bus.record(&Event {
            time_us: 0,
            kind: EventKind::Wake { thread: 1 },
        });
        assert_eq!(shared.with(|c| c.0), 1);
    }
}
