//! # lottery-bench
//!
//! Shared builders for the Criterion benchmarks. The benches themselves
//! live in `benches/`:
//!
//! * `selection` — list vs move-to-front vs partial-sum tree draw cost as
//!   the client count grows (Section 4.2's data-structure discussion).
//! * `dispatch` — full scheduling-decision cost per policy (Section 5.6).
//! * `currencies` — valuation cost vs currency-graph depth and fan-out.
//! * `rng` — Park–Miller draw throughput (Appendix A's "10 RISC
//!   instructions" claim, in relative terms).
//! * `mutex` — lottery mutex handoff throughput vs a plain mutex.

use lottery_core::ledger::Ledger;
use lottery_core::prelude::*;

/// Builds a ledger with `clients` active clients funded directly from the
/// base currency with `tickets` each.
pub fn flat_ledger(clients: usize, tickets: u64) -> (Ledger, Vec<ClientId>) {
    let mut ledger = Ledger::new();
    let ids: Vec<ClientId> = (0..clients)
        .map(|i| {
            let c = ledger.create_client(format!("c{i}"));
            let t = ledger.issue_root(ledger.base(), tickets).unwrap();
            ledger.fund_client(t, c).unwrap();
            ledger.activate_client(c).unwrap();
            c
        })
        .collect();
    (ledger, ids)
}

/// Builds a ledger whose clients sit below a chain of `depth` currencies
/// (base ← c1 ← c2 ← ... ← c_depth ← clients).
pub fn deep_ledger(depth: usize, clients: usize) -> (Ledger, Vec<ClientId>) {
    let mut ledger = Ledger::new();
    let mut cur = ledger.base();
    for d in 0..depth {
        let next = ledger.create_currency(format!("level{d}")).unwrap();
        let back = ledger.issue_root(cur, 1000).unwrap();
        ledger.fund_currency(back, next).unwrap();
        cur = next;
    }
    let ids: Vec<ClientId> = (0..clients)
        .map(|i| {
            let c = ledger.create_client(format!("c{i}"));
            let t = ledger.issue_root(cur, 10).unwrap();
            ledger.fund_client(t, c).unwrap();
            ledger.activate_client(c).unwrap();
            c
        })
        .collect();
    (ledger, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lottery_core::ledger::Valuator;

    #[test]
    fn flat_ledger_values() {
        let (ledger, ids) = flat_ledger(4, 25);
        let mut v = Valuator::new(&ledger);
        for &c in &ids {
            assert_eq!(v.client_value(c).unwrap(), 25.0);
        }
    }

    #[test]
    fn deep_ledger_conserves_value() {
        let (ledger, ids) = deep_ledger(6, 10);
        let mut v = Valuator::new(&ledger);
        let total: f64 = ids.iter().map(|&c| v.client_value(c).unwrap()).sum();
        assert!((total - 1000.0).abs() < 1e-9, "{total}");
    }
}
