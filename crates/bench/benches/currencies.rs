//! Section 4.4: ticket-currency valuation cost.
//!
//! "Currency conversions can be accelerated by caching values or exchange
//! rates" — the `Valuator` memoizes per-currency values within one
//! valuation pass. This bench measures valuation against graph depth and
//! client fan-out, and the cost of the activation zero-crossing cascade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lottery_bench::{deep_ledger, flat_ledger};
use lottery_core::ledger::Valuator;

fn bench_valuation_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("currencies/value-all-clients-by-depth");
    for &depth in &[0usize, 2, 4, 8, 16] {
        let (ledger, clients) = deep_ledger(depth, 16);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let mut v = Valuator::new(&ledger);
                let mut total = 0.0;
                for &cl in &clients {
                    total += v.client_value(cl).unwrap();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_valuation_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("currencies/value-all-clients-by-fanout");
    for &n in &[4usize, 32, 256, 2048] {
        let (ledger, clients) = flat_ledger(n, 100);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut v = Valuator::new(&ledger);
                let mut total = 0.0;
                for &cl in &clients {
                    total += v.client_value(cl).unwrap();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_activation_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("currencies/activate-deactivate-cascade");
    for &depth in &[1usize, 4, 16] {
        let (mut ledger, clients) = deep_ledger(depth, 1);
        let client = clients[0];
        // Each iteration deactivates (cascading to the base) and
        // reactivates (cascading back).
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                ledger.deactivate_client(client).unwrap();
                ledger.activate_client(client).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_valuation_depth,
    bench_valuation_fanout,
    bench_activation_cascade
);
criterion_main!(benches);
