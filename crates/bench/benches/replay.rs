//! Prices the record/replay subsystem end to end.
//!
//! Two phases over the same heavy-tailed 40-job trace:
//!
//! * `record/<structure>` — drive the trace live with a ring-buffer
//!   recorder attached and stamp the replay header. This is the cost of
//!   always-on capture.
//! * `replay/<structure>` — re-execute a finished capture from its
//!   header and diff the two streams event by event. Replay re-runs the
//!   exact same simulation, so the delta over `record` is the price of
//!   parsing nothing (the log is already in memory) plus the divergence
//!   scan.
//!
//! Throughput is reported per recorded event so structures of different
//! dispatch rates stay comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_experiments_support::heavy_tailed_spec;
use lottery_sim::prelude::*;
use lottery_sim::replay::{record, CaptureConfig, Replayer};

mod lottery_experiments_support {
    //! A local copy of the experiments crate's bounded-Pareto trace
    //! generator is not needed: the bench builds its spec by hand so the
    //! bench crate does not grow a dependency on the experiments binary.
    use lottery_obs::{CurrencySnapshot, TraceJob, TraceSpec};

    /// A deterministic 40-job, three-tenant trace with service demands
    /// spread over two orders of magnitude (hand-rolled heavy tail).
    pub fn heavy_tailed_spec() -> TraceSpec {
        let currencies = vec![
            CurrencySnapshot {
                name: "gold".to_string(),
                amount: 400,
            },
            CurrencySnapshot {
                name: "silver".to_string(),
                amount: 200,
            },
        ];
        let tenants = ["gold", "silver", "base"];
        let jobs = (0..40u64)
            .map(|i| TraceJob {
                arrival_us: i * 900,
                // 500us..~46ms, dominated by a few large jobs.
                service_us: 500 + (i * i * 29) % 46_000,
                sleep_us: if i % 4 == 0 { 700 } else { 0 },
                tenant: tenants[(i % 3) as usize].to_string(),
                tickets: 100 + (i % 3) * 50,
            })
            .collect();
        TraceSpec { currencies, jobs }
    }
}

fn config_for(structure: SelectStructure) -> CaptureConfig {
    CaptureConfig {
        structure,
        quantum_us: 1_000,
        until_us: 400_000,
        ..CaptureConfig::default()
    }
}

fn bench_record_replay(c: &mut Criterion) {
    let structures = [
        ("list", SelectStructure::List),
        ("tree", SelectStructure::Tree),
        ("alias", SelectStructure::Alias),
    ];

    let mut group = c.benchmark_group("replay");
    for &(label, structure) in &structures {
        let spec = heavy_tailed_spec();
        let config = config_for(structure);
        let events = record(spec.clone(), &config)
            .expect("capture records")
            .events
            .len() as u64;

        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::new("record", label), &structure, |b, _| {
            b.iter(|| record(spec.clone(), &config).expect("capture records"))
        });

        let log = record(spec.clone(), &config).expect("capture records");
        group.bench_with_input(BenchmarkId::new("replay", label), &structure, |b, _| {
            b.iter(|| {
                let report = Replayer::new(log.clone()).run().expect("replay runs");
                assert!(report.bit_exact());
                report
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_record_replay);
criterion_main!(benches);
