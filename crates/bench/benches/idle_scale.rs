//! Mostly-idle populations under the event-driven core.
//!
//! Each configuration builds a kernel with `n` threads of which only
//! `pct` percent are runnable (compute-bound); the rest start asleep on
//! far-future timers via `spawn_sleeping`, so they hold tickets and
//! ledger state but sit only in the pending-event queue. One iteration
//! advances the kernel a 10 ms simulated window at a 1 ms quantum — ten
//! dispatch decisions when work exists.
//!
//! The property under measurement is the cost of *sleepers*: the kernel
//! peeks the event heap (O(1)) at each scheduling point, so a million
//! parked threads cost nothing per decision and `1_000_000 @ 1%` runs at
//! the same per-window cost as `10_000 @ 100%`. (The quantum-stepping
//! ablation this bench once carried — a linear deadline scan per
//! decision — is retired along with the public `TimeMode::Stepping`; the
//! equivalence proof lives on as an in-crate sim property test.)
//!
//! `elements` records the total population so BENCH_idle_scale.json
//! carries each configuration's scale alongside its per-window cost;
//! `tests/bench_schema.rs` asserts the million-idle row stays within 5x
//! of the ten-thousand-all-runnable row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_sim::prelude::*;

const POPULATIONS: [usize; 3] = [10_000, 100_000, 1_000_000];
const RUNNABLE_PCT: [usize; 3] = [1, 10, 100];

/// Far enough out that no sleeper wakes during any plausible number of
/// 10 ms measurement windows.
const FAR_FUTURE: SimTime = SimTime::from_us(1_000_000 * 1_000_000);

fn build_kernel(n: usize, pct: usize) -> Kernel<LotteryPolicy> {
    let policy = LotteryPolicy::with_quantum(7, SimDuration::from_ms(1));
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let runnable = (n * pct / 100).max(1);
    for i in 0..n {
        let spec = FundingSpec::new(base, 100);
        if i < runnable {
            kernel.spawn(format!("run-{i}"), Box::new(ComputeBound), spec);
        } else {
            kernel.spawn_sleeping(
                format!("idle-{i}"),
                Box::new(ComputeBound),
                spec,
                FAR_FUTURE,
            );
        }
    }
    // Alias winner search keeps the decision itself O(1) at every scale,
    // so the measured cost is the time-advance machinery, not the draw.
    kernel.policy_mut().set_structure(SelectStructure::Alias);
    kernel
}

fn bench_idle_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("idle-scale");
    for &n in &POPULATIONS {
        for &pct in &RUNNABLE_PCT {
            let mut kernel = build_kernel(n, pct);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(format!("{pct}pct"), n), &n, |b, _| {
                b.iter(|| {
                    let deadline = kernel.now() + SimDuration::from_ms(10);
                    kernel.run_until(deadline);
                    kernel.now()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_idle_scale);
criterion_main!(benches);
