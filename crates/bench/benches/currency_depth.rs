//! Warm-cache valuation cost vs currency-graph depth.
//!
//! The incremental valuation cache exists so that per-dispatch valuation
//! cost is independent of how deep the currency graph is once entries are
//! warm. This bench pins that claim: `fresh` rebuilds a [`Valuator`] per
//! round (the old per-pick cost, linear in depth), `warm` reads through
//! the ledger's cache (flat across depths), and `after-mutation` interleaves
//! a compensation change per round so each read revalidates exactly the
//! invalidated client instead of the whole chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lottery_bench::deep_ledger;
use lottery_core::ledger::Valuator;

const DEPTHS: [usize; 4] = [1, 4, 16, 64];
const CLIENTS: usize = 16;

fn bench_fresh_valuator(c: &mut Criterion) {
    let mut group = c.benchmark_group("currency_depth/fresh-valuator");
    for &depth in &DEPTHS {
        let (ledger, clients) = deep_ledger(depth, CLIENTS);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let mut v = Valuator::new(&ledger);
                let mut total = 0.0;
                for &cl in &clients {
                    total += v.client_value(cl).unwrap();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_warm_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("currency_depth/warm-cache");
    for &depth in &DEPTHS {
        let (ledger, clients) = deep_ledger(depth, CLIENTS);
        // Warm every entry once; the measured loop never walks the chain.
        for &cl in &clients {
            ledger.cached_client_value(cl).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let mut total = 0.0;
                for &cl in &clients {
                    total += ledger.cached_client_value(cl).unwrap();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_after_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("currency_depth/after-mutation");
    for &depth in &DEPTHS {
        let (mut ledger, clients) = deep_ledger(depth, CLIENTS);
        for &cl in &clients {
            ledger.cached_client_value(cl).unwrap();
        }
        let victim = clients[0];
        let mut flip = false;
        // Each round invalidates one client (compensation change) and then
        // values everyone: one client revalidates against still-warm
        // currency entries, the rest are hash lookups.
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                flip = !flip;
                let factor = if flip { 2.0 } else { 1.0 };
                ledger.set_compensation(victim, factor).unwrap();
                let mut total = 0.0;
                for &cl in &clients {
                    total += ledger.cached_client_value(cl).unwrap();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fresh_valuator,
    bench_warm_cache,
    bench_after_mutation
);
criterion_main!(benches);
