//! Section 5.6: the real cost of a scheduling decision, per policy.
//!
//! The paper's unoptimized prototype spends on the order of a thousand
//! RISC instructions per lottery; this bench measures what this
//! implementation spends, for the lottery (flat and deep currency graphs)
//! and every baseline, by driving whole kernel quanta.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_sim::prelude::*;

/// Advances the kernel by `quanta` 100 ms quanta of compute-bound load.
fn run_quanta<P: Policy>(kernel: &mut Kernel<P>, quanta: u64) {
    kernel.run_for(SimDuration::from_ms(100 * quanta));
}

fn bench_lottery_flat(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch/lottery-flat");
    for &(label, structure) in &[
        ("list", SelectStructure::List),
        ("tree", SelectStructure::Tree),
        ("alias", SelectStructure::Alias),
    ] {
        for &n in &[2usize, 8, 32, 128] {
            let mut policy = LotteryPolicy::new(1);
            policy.set_structure(structure);
            let base = policy.base_currency();
            let mut kernel = Kernel::new(policy);
            for i in 0..n {
                kernel.spawn(
                    format!("t{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(base, 100),
                );
            }
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| run_quanta(&mut kernel, 1))
            });
        }
    }
    group.finish();
}

fn bench_lottery_deep(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch/lottery-currency-depth");
    for &(label, structure) in &[
        ("list", SelectStructure::List),
        ("tree", SelectStructure::Tree),
        ("alias", SelectStructure::Alias),
    ] {
        for &depth in &[0usize, 2, 4, 8] {
            let mut policy = LotteryPolicy::new(1);
            policy.set_structure(structure);
            let mut cur = policy.base_currency();
            for d in 0..depth {
                cur = policy
                    .create_subcurrency(&format!("level{d}"), cur, 1000)
                    .unwrap();
            }
            let mut kernel = Kernel::new(policy);
            for i in 0..8 {
                kernel.spawn(
                    format!("t{i}"),
                    Box::new(ComputeBound),
                    FundingSpec::new(cur, 100),
                );
            }
            group.bench_with_input(BenchmarkId::new(label, depth), &depth, |b, _| {
                b.iter(|| run_quanta(&mut kernel, 1))
            });
        }
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch/baselines-8-threads");

    let mut kernel = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
    for i in 0..8 {
        kernel.spawn(format!("t{i}"), Box::new(ComputeBound), ());
    }
    group.bench_function("round-robin", |b| b.iter(|| run_quanta(&mut kernel, 1)));

    let mut kernel = Kernel::new(TimesharePolicy::new(SimDuration::from_ms(100)));
    for i in 0..8 {
        kernel.spawn(format!("t{i}"), Box::new(ComputeBound), 12u8);
    }
    group.bench_function("timeshare", |b| b.iter(|| run_quanta(&mut kernel, 1)));

    let mut kernel = Kernel::new(StridePolicy::new(SimDuration::from_ms(100)));
    for i in 0..8 {
        kernel.spawn(format!("t{i}"), Box::new(ComputeBound), 100u64);
    }
    group.bench_function("stride", |b| b.iter(|| run_quanta(&mut kernel, 1)));

    let policy = LotteryPolicy::new(1);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    for i in 0..8 {
        kernel.spawn(
            format!("t{i}"),
            Box::new(ComputeBound),
            FundingSpec::new(base, 100),
        );
    }
    group.bench_function("lottery", |b| b.iter(|| run_quanta(&mut kernel, 1)));

    group.finish();
}

criterion_group!(
    benches,
    bench_lottery_flat,
    bench_lottery_deep,
    bench_baselines
);
criterion_main!(benches);
