//! Section 6.1: lottery-scheduled mutex costs.
//!
//! Measures the simulated mutex's acquire/release lottery against the
//! waiter count, and the real-thread [`lottery_sync::LotteryMutex`]
//! against the plain [`lottery_sync::Mutex`] primitive under no
//! contention (the contended case is dominated by OS scheduling and
//! belongs to the example, not a microbenchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lottery_core::ledger::Ledger;
use lottery_core::prelude::*;
use lottery_sync::os_mutex::LotteryMutex;
use lottery_sync::sim_mutex::{SimLotteryMutex, WaiterFunding};

fn bench_sim_mutex_handoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutex/sim-handoff-lottery");
    for &waiters in &[1usize, 4, 16, 64] {
        // Build a ledger with a holder plus `waiters` blocked clients.
        let mut ledger = Ledger::new();
        let base = ledger.base();
        let clients: Vec<ClientId> = (0..=waiters)
            .map(|i| {
                let cl = ledger.create_client(format!("t{i}"));
                let t = ledger.issue_root(base, 100).unwrap();
                ledger.fund_client(t, cl).unwrap();
                ledger.activate_client(cl).unwrap();
                cl
            })
            .collect();
        let mut mutex = SimLotteryMutex::new(&mut ledger, "bench").unwrap();
        let funding = WaiterFunding {
            currency: base,
            amount: 100,
        };
        assert!(mutex.acquire(&mut ledger, clients[0], funding).unwrap());
        for &w in &clients[1..] {
            mutex.acquire(&mut ledger, w, funding).unwrap();
        }
        let mut rng = ParkMiller::new(3);
        group.bench_with_input(BenchmarkId::from_parameter(waiters), &waiters, |b, _| {
            b.iter(|| {
                // Release to a winner, then re-queue the old holder so the
                // population is stable.
                let holder = mutex.holder().unwrap();
                let next = mutex
                    .release(&mut ledger, holder, &mut rng)
                    .unwrap()
                    .unwrap();
                mutex.acquire(&mut ledger, holder, funding).unwrap();
                next
            })
        });
    }
    group.finish();
}

fn bench_os_mutex_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutex/os-uncontended");
    let lm = LotteryMutex::new(0u64, 1);
    group.bench_function("lottery-mutex", |b| {
        b.iter(|| {
            let mut g = lm.lock(10);
            *g += 1;
        })
    });
    let pm = lottery_sync::Mutex::new(0u64);
    group.bench_function("plain-mutex", |b| {
        b.iter(|| {
            let mut g = pm.lock();
            *g += 1;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim_mutex_handoff, bench_os_mutex_uncontended);
criterion_main!(benches);
