//! Section 4.2: lottery selection structures.
//!
//! "A straightforward way to implement a centralized lottery scheduler is
//! to randomly select a winning ticket, and then search a list of clients
//! ... For large n, a more efficient implementation is to use a tree of
//! partial ticket sums." This bench quantifies that trade-off on this
//! implementation: draw cost for the plain list, the move-to-front list
//! (under a skewed distribution, where MTF shines), and the tree, across
//! client counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_core::prelude::*;

const SIZES: &[usize] = &[4, 16, 64, 256, 1024, 4096];

/// Skewed ticket distribution: 1/8 of clients hold 100x the tickets.
fn tickets(i: usize, n: usize) -> u64 {
    if i >= n - n / 8 {
        1000
    } else {
        10
    }
}

fn bench_draws(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection/draw");
    for &n in SIZES {
        group.throughput(Throughput::Elements(1));

        let mut plain: ListLottery<usize, u64> = ListLottery::without_move_to_front();
        let mut mtf: ListLottery<usize, u64> = ListLottery::new();
        let mut tree: TreeLottery<usize, u64> = TreeLottery::with_capacity(n);
        for i in 0..n {
            plain.insert(i, tickets(i, n));
            mtf.insert(i, tickets(i, n));
            tree.insert(i, tickets(i, n));
        }

        let mut rng = ParkMiller::new(1);
        group.bench_with_input(BenchmarkId::new("list", n), &n, |b, _| {
            b.iter(|| *plain.draw(&mut rng).unwrap())
        });
        let mut rng = ParkMiller::new(1);
        group.bench_with_input(BenchmarkId::new("list-mtf", n), &n, |b, _| {
            b.iter(|| *mtf.draw(&mut rng).unwrap())
        });
        let mut rng = ParkMiller::new(1);
        group.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            b.iter(|| *tree.draw(&mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection/set_weight");
    for &n in &[64usize, 1024] {
        let mut list: ListLottery<usize, u64> = ListLottery::new();
        let mut tree: TreeLottery<usize, u64> = TreeLottery::with_capacity(n);
        for i in 0..n {
            list.insert(i, 10);
            tree.insert(i, 10);
        }
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("list", n), &n, |b, _| {
            b.iter(|| {
                i = (i + 7) % n;
                list.set_weight(&i, (i as u64 % 50) + 1)
            })
        });
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            b.iter(|| {
                i = (i + 7) % n;
                tree.set_weight(&i, (i as u64 % 50) + 1)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_draws, bench_updates);
criterion_main!(benches);
