//! Prices the probe bus on the dispatch hot path.
//!
//! Three recorder configurations over the same 32-thread flat-lottery
//! workload as `dispatch/lottery-flat/*/32`:
//!
//! * `off` — the bus is disabled; every probe point is one branch and no
//!   payload is ever built. This must stay within 1% of the uninstrumented
//!   dispatch baseline (`BENCH_dispatch.json`).
//! * `nop` — the bus is enabled with a [`NopRecorder`]: payloads are
//!   built and fanned out, then discarded. Prices the bus machinery.
//! * `flight` — a ring-buffer [`FlightRecorder`] is attached. Prices a
//!   realistic always-on audit-log configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_obs::{FlightRecorder, NopRecorder, ProbeBus, Shared};
use lottery_sim::prelude::*;

/// Advances the kernel by `quanta` 100 ms quanta of compute-bound load.
fn run_quanta(kernel: &mut Kernel<LotteryPolicy>, quanta: u64) {
    kernel.run_for(SimDuration::from_ms(100 * quanta));
}

fn kernel_with(structure: SelectStructure, threads: usize, bus: ProbeBus) -> Kernel<LotteryPolicy> {
    let mut policy = LotteryPolicy::new(1);
    policy.set_structure(structure);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    kernel.set_probe_bus(bus);
    for i in 0..threads {
        kernel.spawn(
            format!("t{i}"),
            Box::new(ComputeBound),
            FundingSpec::new(base, 100),
        );
    }
    kernel
}

fn bench_recorder_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs-overhead");
    for &(label, structure) in &[
        ("list", SelectStructure::List),
        ("tree", SelectStructure::Tree),
    ] {
        for mode in ["off", "nop", "flight"] {
            let bus = match mode {
                "off" => ProbeBus::disabled(),
                "nop" => ProbeBus::with_recorder(NopRecorder),
                _ => ProbeBus::with_recorder(Shared::new(FlightRecorder::new(4096))),
            };
            let mut kernel = kernel_with(structure, 32, bus);
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(BenchmarkId::new(label, mode), &mode, |b, _| {
                b.iter(|| run_quanta(&mut kernel, 1))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_recorder_modes);
criterion_main!(benches);
