//! Broker funding costs over growing tenant populations (DESIGN.md §7).
//!
//! The broker sits on the control path, not the dispatch path: schedulers
//! consume plain ticket counts and only the periodic control step touches
//! the ledger. These benchmarks price that control step — a full
//! demand-refund `rebalance` cycle (every tenant goes net-idle, then
//! demands everything again, so each iteration unfunds and refunds one
//! backing ticket per tenant) and a full `weight` sweep (4·n cached
//! currency valuations, the numbers exported to the four schedulers) —
//! at 4, 16, and 64 tenants. Throughput elements carry the tenant count
//! so the summary JSON yields per-tenant costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_broker::{Resource, ResourceBroker, SplitPolicy, TenantId};

fn build(tenants: u32) -> (ResourceBroker, Vec<TenantId>) {
    let mut broker = ResourceBroker::new();
    let ids = (0..tenants)
        .map(|i| {
            broker
                .register_tenant(
                    format!("tenant{i}"),
                    100 + u64::from(i),
                    SplitPolicy::even(),
                )
                .expect("fresh tenant names")
        })
        .collect();
    (broker, ids)
}

fn bench_broker_funding(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker-funding");
    for tenants in [4u32, 16, 64] {
        let (mut broker, ids) = build(tenants);
        group.throughput(Throughput::Elements(u64::from(tenants)));
        group.bench_with_input(BenchmarkId::new("rebalance", tenants), &tenants, |b, _| {
            b.iter(|| {
                for &t in &ids {
                    for r in [Resource::Cpu, Resource::Disk, Resource::Mem] {
                        broker.record_demand(t, r, 1);
                    }
                }
                broker.rebalance().unwrap();
                for &t in &ids {
                    for r in Resource::ALL {
                        broker.record_demand(t, r, 1);
                    }
                }
                broker.rebalance().unwrap();
            })
        });
        let (broker, ids) = build(tenants);
        group.bench_with_input(BenchmarkId::new("weights", tenants), &tenants, |b, _| {
            b.iter(|| {
                let mut total = 0.0f64;
                for &t in &ids {
                    for r in Resource::ALL {
                        total += broker.weight(t, r);
                    }
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broker_funding);
criterion_main!(benches);
