//! Real-thread scheduler scaling: `ParKernel` wall-clock throughput as
//! worker threads are added.
//!
//! Each iteration builds a kernel with 64 compute-bound threads funded
//! from one shared currency, spread across `w` OS worker threads, and
//! runs a fixed 1 s *virtual* window at a 10 ms quantum with the pace
//! CPU model engaged (`set_pace(500 µs)`): every dispatch costs 500 µs
//! of real sleep, standing in for the quantum's CPU burn. Because paced
//! workers sleep concurrently, the wall clock per iteration is pinned
//! near `(window / quantum) × pace` — about 50 ms — *regardless* of the
//! worker count, while the number of scheduling decisions completed in
//! that wall time grows linearly with `w` (each worker drives its own
//! shard through the same window). That is the point: throughput in
//! decisions per wall second must scale with workers even on a host
//! with few physical cores, because the scheduler — not the simulated
//! CPU burn — is the only serial part.
//!
//! `elements` carries the exact decision count per iteration
//! (`w × window/quantum`; compute-bound threads never block, so every
//! quantum is a full one). `tests/bench_schema.rs` asserts the
//! throughput-normalised speedup from 1 to 8 workers is at least 3x —
//! well under the ideal 8x, leaving room for per-worker spawn/join and
//! shared-ledger lock overhead, but far beyond what any serialised
//! backend could show.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_par::{ParKernel, WorkSpec};
use lottery_sim::prelude::*;

const THREADS: usize = 64;
const WORKERS: [u32; 4] = [1, 2, 4, 8];
const QUANTUM: SimDuration = SimDuration::from_ms(10);
const WINDOW: SimDuration = SimDuration::from_ms(1_000);
const PACE: Duration = Duration::from_micros(500);

fn build_kernel(workers: u32) -> ParKernel {
    let mut kernel = ParKernel::with_quantum(1, workers, QUANTUM);
    kernel.set_pace(Some(PACE));
    let shared = kernel
        .create_currency("load", 100 * THREADS as u64)
        .unwrap();
    for _ in 0..THREADS {
        kernel.spawn(WorkSpec::Compute, FundingSpec::new(shared, 100));
    }
    kernel
}

fn bench_par_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("par-scaling");
    for &workers in &WORKERS {
        let decisions = workers as u64 * (WINDOW.as_us() / QUANTUM.as_us());
        group.throughput(Throughput::Elements(decisions));
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = build_kernel(workers).run(SimTime::ZERO + WINDOW);
                    assert_eq!(report.decisions(), decisions);
                    report.decisions()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_par_scaling);
criterion_main!(benches);
