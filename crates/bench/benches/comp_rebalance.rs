//! Raw- versus compensated-weight rebalancing under an I/O-bound mix
//! (DESIGN.md §6, "Compensated rebalancing").
//!
//! Same machine as the `smp-dist` experiment's I/O-heavy variant: four
//! CPUs with a 10 ms quantum; sixteen 100-ticket compute hogs pinned
//! eight each on shards 0–1; eight 200-ticket I/O-bound threads
//! (5 ms run / 12 ms sleep, so every burst ends in a partial-quantum
//! block carrying a Section 4.5 compensation factor of 2) pinned four
//! each on shards 2–3. With compensated totals the rebalancer sees the
//! sleepers' `factor × funded` weight resting on their home shards and
//! leaves the hogs out, delivering the 2:1 per-thread ticket edge as
//! CPU time. The raw-weight ablation sees the I/O shards as near-empty
//! whenever the sleepers are blocked, migrates hogs in, and the I/O
//! class drifts far below entitlement.
//!
//! Each variant first runs a 240-simulated-second measurement pass; the
//! observed io:hog CPU ratio ×1000 is committed as the result's
//! `elements` field (2:1 exact → 2000), so the summary JSON carries the
//! fairness outcome alongside the dispatch timing. The timed iterations
//! then advance one simulated second each on the warm machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_sim::prelude::*;

const CPUS: usize = 4;
const HOGS: usize = 16;
const IOS: usize = 8;

fn build(comp_aware: bool) -> (SmpKernel<DistributedLottery>, Vec<ThreadId>, Vec<ThreadId>) {
    let mut policy = DistributedLottery::with_quantum(1, CPUS, SimDuration::from_ms(10));
    policy.set_comp_aware_rebalance(comp_aware);
    policy.set_rebalance(32, 1.75);
    let base = policy.base_currency();
    let mut kernel = SmpKernel::new(policy, CPUS);
    let hogs: Vec<ThreadId> = (0..HOGS)
        .map(|i| {
            kernel.spawn(
                format!("hog{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, 100),
            )
        })
        .collect();
    let ios: Vec<ThreadId> = (0..IOS)
        .map(|i| {
            kernel.spawn(
                format!("io{i}"),
                Box::new(IoBound::new(
                    SimDuration::from_ms(5),
                    SimDuration::from_ms(12),
                )),
                FundingSpec::new(base, 200),
            )
        })
        .collect();
    for (i, &t) in hogs.iter().enumerate() {
        kernel.policy_mut().migrate(t, (i % 2) as u32);
    }
    for (i, &t) in ios.iter().enumerate() {
        kernel.policy_mut().migrate(t, 2 + (i % 2) as u32);
    }
    (kernel, hogs, ios)
}

/// io:hog mean-CPU ratio after 240 simulated seconds — 2.0 when the
/// 2:1 ticket edge is delivered, well below when the I/O class drifts.
fn class_ratio(comp_aware: bool) -> f64 {
    let (mut kernel, hogs, ios) = build(comp_aware);
    kernel
        .run_until(SimTime::from_secs(240))
        .expect("run/sleep workloads only");
    let mean = |tids: &[ThreadId]| {
        tids.iter()
            .map(|&t| kernel.metrics().cpu_us(t))
            .sum::<u64>() as f64
            / tids.len() as f64
    };
    mean(&ios) / mean(&hogs)
}

fn bench_comp_rebalance(c: &mut Criterion) {
    let mut group = c.benchmark_group("comp-rebalance");
    for (label, comp_aware) in [("compensated", true), ("raw", false)] {
        let ratio = class_ratio(comp_aware);
        let (mut kernel, _, _) = build(comp_aware);
        group.throughput(Throughput::Elements((ratio * 1000.0) as u64));
        group.bench_with_input(BenchmarkId::new(label, CPUS), &CPUS, |b, _| {
            b.iter(|| {
                let next = kernel.now() + SimDuration::from_secs(1);
                kernel.run_until(next).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_comp_rebalance);
criterion_main!(benches);
