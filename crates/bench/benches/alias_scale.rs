//! Million-client dispatch: alias sampler vs partial-sum tree.
//!
//! Each configuration spawns a flat population of uniformly funded
//! threads, switches the policy's winner-search structure, and measures
//! one full scheduling decision per iteration — pick (which refreshes
//! dirty weights, draws, and dequeues), charge, and re-enqueue. The
//! dispatch churn patches the structure incrementally: for the alias
//! sampler the overlay self-cleans (the requeued thread returns at its
//! snapshot weight), so the decision cost stays flat from 10^4 to 10^6
//! clients, while the tree pays a descent that grows with lg n.
//!
//! `elements` records the population so BENCH_alias_scale.json carries
//! the scale of each configuration alongside its per-decision cost.
//!
//! The `draw-*` rows isolate the selection structures themselves — one
//! `draw` on a clean pool per iteration, no dequeue/charge/enqueue — so
//! the JSON separates the structure's winner-search cost (alias: one
//! guide-cell probe, flat in n up to cache effects) from the policy's
//! per-decision bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_core::lottery::alias::AliasLottery;
use lottery_core::lottery::tree::TreeLottery;
use lottery_core::lottery::TicketPool;
use lottery_core::rng::ParkMiller;
use lottery_sim::prelude::*;

const POPULATIONS: [usize; 3] = [10_000, 100_000, 1_000_000];

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias-scale");
    for &(label, structure) in &[
        ("tree", SelectStructure::Tree),
        ("alias", SelectStructure::Alias),
    ] {
        for &n in &POPULATIONS {
            let mut policy = LotteryPolicy::new(1);
            let base = policy.base_currency();
            for i in 0..n {
                let tid = ThreadId::from_index(i as u32);
                policy.on_spawn(tid, FundingSpec::new(base, 100));
                policy.enqueue(tid, SimTime::ZERO);
            }
            // Switching after the spawn loop does one bulk rebuild, so
            // the measured iterations start from a clean snapshot.
            policy.set_structure(structure);
            let quantum = SimDuration::from_ms(100);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let w = policy.pick(SimTime::ZERO).unwrap();
                    policy.charge(w, quantum, quantum, EndReason::QuantumExpired);
                    policy.enqueue(w, SimTime::ZERO);
                })
            });
        }
    }
    group.finish();
}

/// One structure-level draw per iteration on a clean, uniformly weighted
/// pool: the cost of the winner search alone. The alias rows stay within
/// memory-latency noise of each other while the tree's partial-sum
/// descent deepens with lg n.
fn bench_draw(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias-scale");
    for &n in &POPULATIONS {
        let mut tree: TreeLottery<usize, f64> = TreeLottery::with_capacity(n);
        for i in 0..n {
            tree.insert(i, 100.0);
        }
        let mut rng = ParkMiller::new(1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("draw-tree", n), &n, |b, _| {
            b.iter(|| *tree.draw(&mut rng).unwrap())
        });

        let mut alias: AliasLottery<usize> = AliasLottery::with_capacity(n);
        for i in 0..n {
            alias.insert(i, 100.0);
        }
        alias.rebuild();
        let mut rng = ParkMiller::new(1);
        group.bench_with_input(BenchmarkId::new("draw-alias", n), &n, |b, _| {
            b.iter(|| *alias.draw(&mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale, bench_draw);
criterion_main!(benches);
