//! Reconciliation cost vs cluster size (DESIGN.md §8).
//!
//! The cluster coordinator's control path runs once per reconciliation
//! round: fold delivered reports, detect losses, re-target every
//! tenant's allocation toward its demand, and push a full grant sync to
//! every reachable node. These benchmarks price that round at 2–16
//! nodes. The `reconcile` variant runs the protocol alone (zero service
//! slots, so no scheduler work muddies the number); the `round` variant
//! adds two serviced slots per resource per node — the steady-state
//! cost a cluster tick actually pays. Throughput elements carry the
//! node count so the summary JSON yields per-node costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_cluster::{BudgetPolicy, ClusterMarket};

fn market(nodes: u32) -> ClusterMarket {
    let mut m = ClusterMarket::new(
        nodes,
        7,
        BudgetPolicy::DemandFollowing,
        &[("gold", 2000), ("silver", 1000)],
    )
    .expect("fresh market");
    // Backlog on every node so each report row carries demand and every
    // round's rebalance has a signal to chase.
    for node in 0..nodes {
        for tenant in 0..m.tenant_count() {
            m.offer(node, tenant, 8, 8);
        }
    }
    m
}

fn bench_cluster_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    for nodes in [2u32, 4, 8, 16] {
        group.throughput(Throughput::Elements(u64::from(nodes)));
        let mut m = market(nodes);
        group.bench_with_input(BenchmarkId::new("reconcile", nodes), &nodes, |b, _| {
            b.iter(|| m.round(0).expect("reconciliation round"))
        });
        let mut m = market(nodes);
        group.bench_with_input(BenchmarkId::new("round", nodes), &nodes, |b, _| {
            b.iter(|| {
                // Offer exactly what two slots per resource can drain, so
                // queues stay at their seeded depth across iterations.
                for node in 0..nodes {
                    for tenant in 0..m.tenant_count() {
                        m.offer(node, tenant, 1, 1);
                    }
                }
                m.round(2).expect("serviced round")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_rounds);
criterion_main!(benches);
