//! Appendix A: the Park–Miller generator.
//!
//! The paper's assembly implementation runs in roughly 10 RISC
//! instructions. This bench measures the Rust implementation's raw step,
//! the unbiased bounded draw, and the unit-interval float used by
//! currency-valued lotteries, against SplitMix64 for scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lottery_core::rng::{ParkMiller, SchedRng, SplitMix64};

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));

    let mut pm = ParkMiller::new(1);
    group.bench_function("park-miller/next_u31", |b| b.iter(|| pm.next_u31()));

    let mut pm = ParkMiller::new(1);
    group.bench_function("park-miller/below-20", |b| b.iter(|| pm.below(20)));

    let mut pm = ParkMiller::new(1);
    group.bench_function("park-miller/below-large", |b| {
        b.iter(|| pm.below((1 << 40) - 17))
    });

    let mut pm = ParkMiller::new(1);
    group.bench_function("park-miller/next_f64", |b| b.iter(|| pm.next_f64()));

    let mut sm = SplitMix64::new(1);
    group.bench_function("splitmix64/next_u64", |b| b.iter(|| sm.next_u64()));

    group.finish();
}

criterion_group!(benches, bench_rng);
criterion_main!(benches);
