//! SMP dispatch scaling: one shared partial-sum tree versus per-CPU
//! shards (Section 4.2's distributed-lottery direction).
//!
//! Both kernels simulate the same machine — `n` CPUs over 512 I/O-bound
//! threads funded from one shared currency. That currency is the
//! contention point: every block deactivates a client, which re-values
//! the currency and invalidates every sibling's cached valuation (and
//! every wake does it again). The shared baseline funnels all of that
//! through one global dirty queue, so each of its `20·n` picks per
//! simulated second re-weighs the whole thread set — `O(n·threads)`
//! refresh work per second, growing with the CPU count. The distributed
//! policy's per-shard dirty queues mean each pick drains only its own
//! shard's invalidations — `O(threads)` machine-wide no matter how many
//! CPUs — so its decision rate (`elements/s`, one element per scheduling
//! decision) climbs with `n` while the shared baseline's stays flat.
//! Each iteration advances one simulated second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lottery_sim::prelude::*;

const THREADS: usize = 512;
const CPUS: [usize; 4] = [1, 2, 4, 8];

/// I/O-bound threads: compute 50 ms, block 1 ms. Every dispatch ends in
/// a block (deactivate + compensation grant) and every wake reactivates
/// — each one a currency-wide cache invalidation.
fn workload() -> Box<dyn Workload> {
    Box::new(IoBound::new(
        SimDuration::from_ms(50),
        SimDuration::from_ms(1),
    ))
}

fn bench_shared(c: &mut Criterion) {
    let mut group = c.benchmark_group("smp-scaling");
    for &cpus in &CPUS {
        let mut policy = LotteryPolicy::new(1);
        policy.set_structure(SelectStructure::Tree);
        let shared = policy
            .create_currency("load", 100 * THREADS as u64)
            .unwrap();
        let mut kernel = SmpKernel::new(policy, cpus);
        for i in 0..THREADS {
            kernel.spawn(format!("t{i}"), workload(), FundingSpec::new(shared, 100));
        }
        // One simulated second: each CPU makes ~20 decisions (50 ms
        // bursts), all through the one shared tree and dirty queue.
        group.throughput(Throughput::Elements(20 * cpus as u64));
        group.bench_with_input(BenchmarkId::new("shared", cpus), &cpus, |b, _| {
            b.iter(|| {
                let next = kernel.now() + SimDuration::from_secs(1);
                kernel.run_until(next).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("smp-scaling");
    for &cpus in &CPUS {
        let mut policy = DistributedLottery::new(1, cpus);
        let shared = policy
            .create_currency("load", 100 * THREADS as u64)
            .unwrap();
        let mut kernel = SmpKernel::new(policy, cpus);
        for i in 0..THREADS {
            kernel.spawn(format!("t{i}"), workload(), FundingSpec::new(shared, 100));
        }
        group.throughput(Throughput::Elements(20 * cpus as u64));
        group.bench_with_input(BenchmarkId::new("distributed", cpus), &cpus, |b, _| {
            b.iter(|| {
                let next = kernel.now() + SimDuration::from_secs(1);
                kernel.run_until(next).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_distributed_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("smp-scaling");
    for &cpus in &CPUS {
        let mut policy = DistributedLottery::new(1, cpus);
        policy.set_structure(SelectStructure::Alias);
        let shared = policy
            .create_currency("load", 100 * THREADS as u64)
            .unwrap();
        let mut kernel = SmpKernel::new(policy, cpus);
        for i in 0..THREADS {
            kernel.spawn(format!("t{i}"), workload(), FundingSpec::new(shared, 100));
        }
        group.throughput(Throughput::Elements(20 * cpus as u64));
        group.bench_with_input(
            BenchmarkId::new("distributed-alias", cpus),
            &cpus,
            |b, _| {
                b.iter(|| {
                    let next = kernel.now() + SimDuration::from_secs(1);
                    kernel.run_until(next).unwrap();
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_shared,
    bench_distributed,
    bench_distributed_alias
);
criterion_main!(benches);
