//! OS-backed synchronization primitives with a panic-free guard API.
//!
//! The workspace originally vendored a minimal `parking_lot` stand-in so
//! the lottery-handoff mutex and the text-search server could run on real
//! threads. With the real-thread scheduler backend (`lottery-par`) these
//! primitives become load-bearing infrastructure, so they live here as
//! first-class citizens: [`Mutex`], [`Condvar`], and [`RwLock`] delegate
//! to `std::sync` and translate poisoning into lock acquisition (a
//! panicked holder aborts the test or run anyway; no caller in this
//! workspace relies on poison propagation).
//!
//! API shape follows `parking_lot`: `lock()` returns the guard directly
//! (no `Result`), and [`Condvar::wait`] takes the guard by `&mut` so the
//! caller's binding stays usable across the wait.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar::wait` can temporarily take the inner guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

/// Whether a timed condition-variable wait returned by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed (the waiter
    /// may still have been notified concurrently — re-check the
    /// predicate either way).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// relocks before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// As [`Self::wait`], but gives up after `timeout`.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock with the same panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_expires() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_timeout(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        // The guard is still usable after the timed wait.
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = Arc::new(RwLock::new(7u32));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 14);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        let w = l.write();
        assert!(l.try_read().is_none());
        drop(w);
        assert!(l.try_read().is_some());
    }
}
