//! # lottery-sync
//!
//! Lottery-scheduled synchronization resources (Section 6.1 of the paper).
//!
//! * [`sim_mutex`] — the mutex-currency / inheritance-ticket object,
//!   implemented against a [`lottery_core::ledger::Ledger`] (Figure 10).
//! * [`experiment`] — the discrete-event driver reproducing Figure 11's
//!   acquisition counts and waiting-time histograms.
//! * [`os_mutex`] — a lottery-handoff mutex for real OS threads, showing
//!   the mechanism outside the simulator.
//! * [`primitives`] — the workspace's OS-backed [`Mutex`], [`Condvar`],
//!   and [`RwLock`] (panic-free guard API), the substrate for the
//!   real-thread scheduler backend in `lottery-par`.
//! * [`channel`] — a hand-rolled bounded MPSC channel built on those
//!   primitives; carries steal/migrate messages between shard workers.

pub mod channel;
pub mod experiment;
pub mod os_mutex;
pub mod primitives;
pub mod sim_mutex;

pub use channel::{bounded, Receiver, Sender};
pub use experiment::{run as run_mutex_experiment, MutexExperiment, MutexReport};
pub use os_mutex::{LotteryMutex, LotteryMutexGuard};
pub use primitives::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
pub use sim_mutex::{SimLotteryMutex, WaiterFunding};
