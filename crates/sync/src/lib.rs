//! # lottery-sync
//!
//! Lottery-scheduled synchronization resources (Section 6.1 of the paper).
//!
//! * [`sim_mutex`] — the mutex-currency / inheritance-ticket object,
//!   implemented against a [`lottery_core::ledger::Ledger`] (Figure 10).
//! * [`experiment`] — the discrete-event driver reproducing Figure 11's
//!   acquisition counts and waiting-time histograms.
//! * [`os_mutex`] — a lottery-handoff mutex for real OS threads, showing
//!   the mechanism outside the simulator.

pub mod experiment;
pub mod os_mutex;
pub mod sim_mutex;

pub use experiment::{run as run_mutex_experiment, MutexExperiment, MutexReport};
pub use os_mutex::{LotteryMutex, LotteryMutexGuard};
pub use sim_mutex::{SimLotteryMutex, WaiterFunding};
