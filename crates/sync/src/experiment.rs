//! The Section 6.1 mutex experiment (Figures 10 and 11).
//!
//! "We have experimented with our mutex implementation using a synthetic
//! multithreaded application in which threads compete for the same mutex.
//! Each thread repeatedly acquires the mutex, holds it for *h*
//! milliseconds, releases the mutex, and computes for another *c*
//! milliseconds." The eight threads are split into two groups with a 2 : 1
//! ticket allocation; the paper reports a 1.80 : 1 acquisition ratio and a
//! 1 : 2.11 mean waiting-time ratio.
//!
//! This driver reproduces the experiment as a small discrete-event
//! simulation over [`crate::sim_mutex::SimLotteryMutex`]. CPU contention is
//! not modelled: with eight threads parked on one lock the behaviour under
//! study is lock scheduling, and the waiting-time statistics are produced
//! by the handoff lotteries alone.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lottery_core::client::ClientId;
use lottery_core::ledger::Ledger;
use lottery_core::rng::ParkMiller;
use lottery_stats::{Histogram, Summary};

use crate::sim_mutex::{SimLotteryMutex, WaiterFunding};

/// Configuration for the mutex fairness experiment.
#[derive(Debug, Clone)]
pub struct MutexExperiment {
    /// Threads per group.
    pub threads_per_group: usize,
    /// Base funding of each group's currency; the paper uses 2 : 1.
    pub group_funding: Vec<u64>,
    /// Mutex hold time in milliseconds (the paper's `h` = 50).
    pub hold_ms: u64,
    /// Compute time between acquisitions in milliseconds (`c` = 50).
    pub compute_ms: u64,
    /// Experiment length in milliseconds (the paper runs two minutes).
    pub duration_ms: u64,
    /// RNG seed.
    pub seed: u32,
}

impl Default for MutexExperiment {
    fn default() -> Self {
        Self {
            threads_per_group: 4,
            group_funding: vec![2000, 1000],
            hold_ms: 50,
            compute_ms: 50,
            duration_ms: 120_000,
            seed: 1,
        }
    }
}

/// Per-group results.
#[derive(Debug)]
pub struct GroupReport {
    /// Mutex acquisitions by the group's threads.
    pub acquisitions: u64,
    /// Waiting times in milliseconds.
    pub waiting_ms: Summary,
    /// Waiting-time histogram (Figure 11's panels), 0–4 s in 125 ms
    /// buckets.
    pub histogram: Histogram,
}

/// Results of one experiment run.
#[derive(Debug)]
pub struct MutexReport {
    /// One report per group, in `group_funding` order.
    pub groups: Vec<GroupReport>,
}

impl MutexReport {
    /// Acquisition ratio of group `a` to group `b`.
    pub fn acquisition_ratio(&self, a: usize, b: usize) -> f64 {
        self.groups[a].acquisitions as f64 / self.groups[b].acquisitions as f64
    }

    /// Mean-waiting-time ratio of group `a` to group `b`.
    pub fn waiting_ratio(&self, a: usize, b: usize) -> f64 {
        self.groups[a].waiting_ms.mean() / self.groups[b].waiting_ms.mean()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// The thread finishes computing and tries to acquire.
    Acquire,
    /// The thread finishes its hold time and releases.
    Release,
}

/// Runs the experiment.
pub fn run(config: &MutexExperiment) -> MutexReport {
    let mut ledger = Ledger::new();
    let mut rng = ParkMiller::new(config.seed);

    // Build the group currencies and their threads.
    let mut clients: Vec<ClientId> = Vec::new();
    let mut group_of: Vec<usize> = Vec::new();
    let mut fundings: Vec<WaiterFunding> = Vec::new();
    for (g, &funding) in config.group_funding.iter().enumerate() {
        let currency = ledger.create_currency(format!("group{g}")).unwrap();
        let backing = ledger.issue_root(ledger.base(), funding).unwrap();
        ledger.fund_currency(backing, currency).unwrap();
        for i in 0..config.threads_per_group {
            let c = ledger.create_client(format!("g{g}t{i}"));
            let t = ledger.issue_root(currency, 100).unwrap();
            ledger.fund_client(t, c).unwrap();
            ledger.activate_client(c).unwrap();
            clients.push(c);
            group_of.push(g);
            fundings.push(WaiterFunding {
                currency,
                amount: 100,
            });
        }
    }

    let mut mutex = SimLotteryMutex::new(&mut ledger, "contended").unwrap();
    let mut groups: Vec<GroupReport> = config
        .group_funding
        .iter()
        .map(|_| GroupReport {
            acquisitions: 0,
            waiting_ms: Summary::new(),
            histogram: Histogram::new(0.0, 4000.0, 32),
        })
        .collect();

    // Event queue: (time_ms, sequence, thread index, event).
    let mut events: BinaryHeap<Reverse<(u64, u64, usize, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut waiting_since: Vec<Option<u64>> = vec![None; clients.len()];
    for i in 0..clients.len() {
        // Stagger initial attempts by a millisecond to avoid a thundering
        // herd at t = 0 with deterministic tie-breaks.
        events.push(Reverse((i as u64, i as u64, i, Event::Acquire)));
        seq += 1;
    }

    let record = |groups: &mut Vec<GroupReport>, thread: usize, waited_ms: u64| {
        let g = group_of[thread];
        groups[g].acquisitions += 1;
        groups[g].waiting_ms.record(waited_ms as f64);
        groups[g].histogram.record(waited_ms as f64);
    };

    while let Some(Reverse((now, _, thread, event))) = events.pop() {
        if now >= config.duration_ms {
            break;
        }
        match event {
            Event::Acquire => {
                let client = clients[thread];
                if mutex
                    .acquire(&mut ledger, client, fundings[thread])
                    .unwrap()
                {
                    record(&mut groups, thread, 0);
                    seq += 1;
                    events.push(Reverse((now + config.hold_ms, seq, thread, Event::Release)));
                } else {
                    // Blocked: deactivate while waiting, as the kernel
                    // would when taking the thread off the run queue.
                    ledger.deactivate_client(client).unwrap();
                    waiting_since[thread] = Some(now);
                }
            }
            Event::Release => {
                let client = clients[thread];
                let next = mutex.release(&mut ledger, client, &mut rng).unwrap();
                // The releasing thread computes, then tries again.
                seq += 1;
                events.push(Reverse((
                    now + config.compute_ms,
                    seq,
                    thread,
                    Event::Acquire,
                )));
                if let Some(winner) = next {
                    let w = clients.iter().position(|&c| c == winner).unwrap();
                    ledger.activate_client(winner).unwrap();
                    let waited = now - waiting_since[w].take().expect("winner was waiting");
                    record(&mut groups, w, waited);
                    seq += 1;
                    events.push(Reverse((now + config.hold_ms, seq, w, Event::Release)));
                }
            }
        }
    }

    MutexReport { groups }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_shape() {
        // The paper's run: 8 threads, groups 2:1, h = c = 50 ms, 2 min.
        // Reported: acquisitions 763 : 423 (1.80 : 1), mean waits
        // 450 ms : 948 ms (1 : 2.11). Assert the shape, not the decimals.
        let report = run(&MutexExperiment::default());
        let acq = report.acquisition_ratio(0, 1);
        assert!(
            (1.4..=2.4).contains(&acq),
            "acquisition ratio {acq} out of range"
        );
        let wait = report.waiting_ratio(1, 0);
        assert!(
            (1.4..=3.2).contains(&wait),
            "waiting ratio {wait} out of range"
        );
        // Total acquisitions bounded by lock capacity: one 50 ms hold at a
        // time for 120 s is at most 2400.
        let total: u64 = report.groups.iter().map(|g| g.acquisitions).sum();
        assert!(total <= 2400, "total {total}");
        assert!(total >= 2000, "lock should be saturated, got {total}");
    }

    #[test]
    fn equal_funding_is_fair() {
        let report = run(&MutexExperiment {
            group_funding: vec![1000, 1000],
            seed: 9,
            ..MutexExperiment::default()
        });
        let acq = report.acquisition_ratio(0, 1);
        assert!((0.85..=1.15).contains(&acq), "ratio {acq}");
    }

    #[test]
    fn uncontended_single_thread_never_waits() {
        let report = run(&MutexExperiment {
            threads_per_group: 1,
            group_funding: vec![1000],
            duration_ms: 10_000,
            ..MutexExperiment::default()
        });
        assert_eq!(report.groups[0].waiting_ms.max(), 0.0);
        // One acquire per 100 ms.
        assert!((95..=101).contains(&report.groups[0].acquisitions));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = run(&MutexExperiment::default());
        let b = run(&MutexExperiment::default());
        assert_eq!(a.groups[0].acquisitions, b.groups[0].acquisitions);
        assert_eq!(a.groups[1].acquisitions, b.groups[1].acquisitions);
    }
}
