//! A bounded multi-producer single-consumer channel.
//!
//! The real-thread scheduler backend (`lottery-par`) moves thread state
//! between shard workers by message passing: each worker owns an inbox
//! other workers post messages into. The build environment is
//! offline, so the channel is hand-rolled here on top of the workspace's
//! own [`Mutex`]/[`Condvar`] primitives rather than pulled from a crate.
//!
//! Semantics match `std::sync::mpsc::sync_channel`: `send` blocks while
//! the buffer is full, `recv` blocks while it is empty, and either side
//! disconnecting unblocks the other with an error. Backpressure from the
//! bound is the point — a worker that falls behind slows its producers
//! instead of growing an unbounded queue.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use crate::primitives::{Condvar, Mutex};

/// The channel is disconnected: every receiver (for sends) or every
/// sender (for receives) has been dropped. Carries the unsent value back
/// to the caller on the send side.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Outcome of a non-blocking [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The buffer is at capacity; the value is returned.
    Full(T),
    /// The receiver is gone; the value is returned.
    Disconnected(T),
}

/// The senders are all gone and the buffer is drained.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now.
    Empty,
    /// The senders are all gone and the buffer is drained.
    Disconnected,
}

/// Outcome of a timed [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing buffered.
    Timeout,
    /// The senders are all gone and the buffer is drained.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Inner<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Producing half of a bounded channel; clone freely across threads.
pub struct Sender<T>(Arc<Inner<T>>);

/// Consuming half of a bounded channel; owned by exactly one thread.
pub struct Receiver<T>(Arc<Inner<T>>);

/// Creates a bounded channel holding at most `capacity` in-flight values.
/// A zero capacity is clamped to one (a rendezvous channel is not needed
/// here and would deadlock single-threaded tests).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        capacity: capacity.max(1),
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&inner)), Receiver(inner))
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the buffer is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.0.state.lock();
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < self.0.capacity {
                state.queue.push_back(value);
                drop(state);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            self.0.not_full.wait(&mut state);
        }
    }

    /// Sends without blocking; fails if full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.0.state.lock();
        if !state.receiver_alive {
            return Err(TrySendError::Disconnected(value));
        }
        if state.queue.len() >= self.0.capacity {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.0.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().senders += 1;
        Self(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // The receiver may be parked waiting for data that will never
            // arrive.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next value, blocking while the buffer is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.0.state.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            self.0.not_empty.wait(&mut state);
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.0.state.lock();
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.0.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives with a deadline, for best-effort idle parking.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let mut state = self.0.state.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            if self
                .0
                .not_empty
                .wait_timeout(&mut state, timeout)
                .timed_out()
            {
                return match state.queue.pop_front() {
                    Some(value) => {
                        drop(state);
                        self.0.not_full.notify_one();
                        Ok(value)
                    }
                    None => Err(RecvTimeoutError::Timeout),
                };
            }
        }
    }

    /// Drains everything currently buffered without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.0.state.lock();
        let out: Vec<T> = state.queue.drain(..).collect();
        drop(state);
        if !out.is_empty() {
            self.0.not_full.notify_all();
        }
        out
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock();
        state.receiver_alive = false;
        state.queue.clear();
        drop(state);
        // Senders parked on a full buffer must observe the disconnect.
        self.0.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Endpoints must cross thread boundaries (that is their job).
    #[test]
    fn endpoints_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Sender<Box<u64>>>();
        assert_send::<Receiver<Box<u64>>>();
    }

    #[test]
    fn values_arrive_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.try_recv(), Ok(0));
        assert_eq!(rx.drain(), vec![1, 2, 3]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_send_blocks_until_receive() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        let producer = thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        producer.join().unwrap();
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = bounded::<u32>(2);
        let tx2 = tx.clone();
        tx.send(9).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn dropping_receiver_fails_sends() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(5u32), Err(SendError(5)));
        assert_eq!(tx.try_send(6), Err(TrySendError::Disconnected(6)));
    }

    #[test]
    fn recv_timeout_expires_when_idle() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(2)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(2)), Ok(3));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = bounded(8);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(t * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 400);
        // Per-producer FIFO: each thread's values arrive in its send order.
        for t in 0..4u64 {
            let mine: Vec<u64> = got.iter().copied().filter(|v| v / 1000 == t).collect();
            assert!(mine.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
