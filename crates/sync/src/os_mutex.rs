//! A lottery-scheduled mutex for real OS threads.
//!
//! [`LotteryMutex`] demonstrates Section 6.1's mechanism outside the
//! simulator: when the mutex is released with threads waiting, the *next
//! owner is chosen by lottery* over the waiters' ticket counts, instead of
//! by arrival order or OS wakeup happenstance. Threads with more tickets
//! acquire a contended lock proportionally more often, so relative waiting
//! times track ticket allocations — the experiment behind Figure 11.
//!
//! The implementation uses the workspace's own [`crate::primitives`]
//! mutex/condvar for the queueing substrate; lottery scheduling here
//! governs *who gets the lock*, not how the OS schedules runnable
//! threads.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

use lottery_core::rng::{ParkMiller, SchedRng};

use crate::primitives::{Condvar, Mutex};

struct Waiter {
    id: u64,
    tickets: u64,
}

struct State {
    /// Whether the lock is currently owned.
    held: bool,
    /// Blocked waiters, in arrival order.
    waiters: Vec<Waiter>,
    /// The waiter chosen by the last handoff lottery.
    chosen: Option<u64>,
    /// Ticket-draw source for handoff lotteries.
    rng: ParkMiller,
    /// Next waiter id.
    next_id: u64,
    /// Total acquisitions (for fairness measurements).
    acquisitions: u64,
}

/// A mutex whose handoff among waiters is a ticket lottery.
///
/// # Examples
///
/// ```
/// use lottery_sync::os_mutex::LotteryMutex;
///
/// let m = LotteryMutex::new(0u64, 42);
/// {
///     let mut g = m.lock(100);
///     *g += 1;
/// }
/// assert_eq!(*m.lock(100), 1);
/// ```
pub struct LotteryMutex<T> {
    state: Mutex<State>,
    handoff: Condvar,
    data: UnsafeCell<T>,
}

// SAFETY: `LotteryMutex` provides mutual exclusion for `data`: the `held`
// flag guarded by `state` admits exactly one owner at a time, so `&mut T`
// references handed out through the guard never alias.
unsafe impl<T: Send> Send for LotteryMutex<T> {}
// SAFETY: As above; shared references to the mutex only touch `data`
// through the exclusive guard.
unsafe impl<T: Send> Sync for LotteryMutex<T> {}

impl<T> LotteryMutex<T> {
    /// Creates a lottery mutex around `value`, with a deterministic seed
    /// for its handoff lotteries.
    pub fn new(value: T, seed: u32) -> Self {
        Self {
            state: Mutex::new(State {
                held: false,
                waiters: Vec::new(),
                chosen: None,
                rng: ParkMiller::new(seed),
                next_id: 0,
                acquisitions: 0,
            }),
            handoff: Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, competing with `tickets` tickets.
    ///
    /// Blocks until the handoff lottery selects this thread. A zero ticket
    /// count is clamped to one — a client with no tickets would starve
    /// (Section 2 guarantees progress only for non-zero holdings).
    pub fn lock(&self, tickets: u64) -> LotteryMutexGuard<'_, T> {
        let tickets = tickets.max(1);
        let mut state = self.state.lock();
        if !state.held && state.waiters.is_empty() {
            state.held = true;
            state.acquisitions += 1;
            drop(state);
            return LotteryMutexGuard { mutex: self };
        }
        let id = state.next_id;
        state.next_id += 1;
        state.waiters.push(Waiter { id, tickets });
        loop {
            self.handoff.wait(&mut state);
            if state.chosen == Some(id) {
                state.chosen = None;
                state.held = true;
                state.acquisitions += 1;
                drop(state);
                return LotteryMutexGuard { mutex: self };
            }
        }
    }

    /// Attempts to acquire without blocking.
    pub fn try_lock(&self) -> Option<LotteryMutexGuard<'_, T>> {
        let mut state = self.state.lock();
        if !state.held && state.waiters.is_empty() {
            state.held = true;
            state.acquisitions += 1;
            Some(LotteryMutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Total successful acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.state.lock().acquisitions
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    fn unlock(&self) {
        let mut state = self.state.lock();
        debug_assert!(state.held, "unlock of an unheld LotteryMutex");
        state.held = false;
        if state.waiters.is_empty() {
            return;
        }
        // Hold the handoff lottery: draw a winning value below the total
        // ticket count and walk the waiter list (Figure 1's procedure).
        let total: u64 = state.waiters.iter().map(|w| w.tickets).sum();
        let winning = state.rng.below(total);
        let mut sum = 0;
        let mut index = state.waiters.len() - 1;
        for (i, w) in state.waiters.iter().enumerate() {
            sum += w.tickets;
            if winning < sum {
                index = i;
                break;
            }
        }
        let winner = state.waiters.remove(index);
        state.chosen = Some(winner.id);
        // Wake everyone; only the chosen waiter proceeds. This is the
        // simple (thundering-herd) variant — adequate for the waiter
        // counts in the paper's experiment.
        drop(state);
        self.handoff.notify_all();
    }
}

/// RAII guard providing access to the protected data.
pub struct LotteryMutexGuard<'a, T> {
    mutex: &'a LotteryMutex<T>,
}

impl<T> Deref for LotteryMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: The guard proves exclusive ownership (`held` was set by
        // exactly one thread), so dereferencing the cell is race-free.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for LotteryMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: As in `deref`; `&mut self` additionally prevents aliasing
        // through this guard.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for LotteryMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn basic_mutual_exclusion() {
        let m = Arc::new(LotteryMutex::new(0u64, 1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock(10) += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(1), 4000);
        assert_eq!(Arc::try_unwrap(m).ok().unwrap().into_inner(), 4000);
    }

    #[test]
    fn try_lock_respects_holder() {
        let m = LotteryMutex::new((), 1);
        let g = m.try_lock().unwrap();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn try_lock_defers_to_waiters() {
        // With a waiter parked, try_lock must fail even though the lock is
        // technically free for an instant — barging would break the
        // lottery's proportional guarantee.
        let m = Arc::new(LotteryMutex::new((), 5));
        let g = m.lock(1);
        let parked = Arc::new(AtomicBool::new(false));
        let waiter = {
            let m = Arc::clone(&m);
            let parked = Arc::clone(&parked);
            std::thread::spawn(move || {
                parked.store(true, Ordering::SeqCst);
                let _g = m.lock(1);
            })
        };
        while !parked.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // Give the waiter time to actually park on the condvar.
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        waiter.join().unwrap();
        // After handoff completes the lock is free again.
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn weighted_acquisitions_favor_ticket_holders() {
        // Two spinning groups with a 3:1 ticket split; the heavy group
        // should complete clearly more critical sections. Generous bounds:
        // OS scheduling noise is real.
        let m = Arc::new(LotteryMutex::new((), 42));
        let counts: Arc<[std::sync::atomic::AtomicU64; 2]> = Arc::new(Default::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for (group, tickets) in [(0usize, 300u64), (1, 100)] {
            for _ in 0..2 {
                let m = Arc::clone(&m);
                let counts = Arc::clone(&counts);
                let stop = Arc::clone(&stop);
                handles.push(std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _g = m.lock(tickets);
                        // Hold briefly so contention (and thus lotteries)
                        // actually occur.
                        std::thread::sleep(Duration::from_micros(200));
                        drop(_g);
                        counts[group].fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let heavy = counts[0].load(Ordering::Relaxed);
        let light = counts[1].load(Ordering::Relaxed);
        assert!(heavy > 0 && light > 0, "both groups must progress");
        let ratio = heavy as f64 / light as f64;
        assert!(ratio > 1.3, "3:1 tickets should beat 1.3x, got {ratio:.2}");
    }
}
