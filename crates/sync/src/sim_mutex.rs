//! Re-export of the ledger-level lottery mutex object.
//!
//! The object itself lives in [`lottery_core::mutex`] so that the
//! simulator's lottery policy can offer in-kernel mutexes without a
//! circular dependency; this module preserves the `lottery-sync` API under
//! the original names.

pub use lottery_core::mutex::{TicketMutex as SimLotteryMutex, WaiterFunding};
