//! Fixed-width histograms.
//!
//! Figure 11 of the paper reports mutex waiting times as frequency
//! histograms annotated with the mean and one standard deviation; this
//! module provides exactly that.

use crate::summary::Summary;

/// A histogram over `[lo, hi)` with equal-width buckets plus overflow /
/// underflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    summary: Summary,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi)` with `buckets` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`; histogram shape is a static
    /// configuration error, not a runtime condition.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            summary: Summary::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.summary.record(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            // Floating division can round up to the bucket count at the
            // extreme top of the range.
            let i = i.min(self.buckets.len() - 1);
            self.buckets[i] += 1;
        }
    }

    /// Bucket counts, in range order.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The half-open value range covered by bucket `i`.
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Summary statistics over *all* observations, including out-of-range
    /// ones.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the bucket counts by
    /// linear interpolation within the containing bucket.
    ///
    /// Underflow counts map to the range bottom and overflow counts to the
    /// range top; returns `None` when no observations were recorded.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = q * total as f64;
        let mut seen = self.underflow as f64;
        if rank <= seen {
            return Some(self.lo);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            let next = seen + c as f64;
            if rank <= next && c > 0 {
                let (lo, hi) = self.bucket_range(i);
                let frac = (rank - seen) / c as f64;
                return Some(lo + (hi - lo) * frac);
            }
            seen = next;
        }
        Some(self.hi)
    }

    /// Renders an ASCII bar chart, `width` characters at the tallest bar.
    ///
    /// The output mimics Figure 11: one row per bucket, the mean marked in
    /// the annotation line below.
    pub fn render(&self, width: usize) -> String {
        let tallest = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            let (lo, hi) = self.bucket_range(i);
            let bar = "#".repeat((c as usize * width).div_ceil(tallest as usize).min(width));
            out.push_str(&format!("[{lo:8.2}, {hi:8.2}) {c:6} {bar}\n"));
        }
        out.push_str(&format!(
            "mean = {:.3}, stddev = {:.3}, n = {} (under {}, over {})\n",
            self.summary.mean(),
            self.summary.stddev(),
            self.count(),
            self.underflow,
            self.overflow,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn out_of_range_counted() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets().iter().sum::<u64>(), 0);
        // Summary still sees everything.
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bucket_ranges_tile_the_domain() {
        let h = Histogram::new(2.0, 4.0, 4);
        assert_eq!(h.bucket_range(0), (2.0, 2.5));
        assert_eq!(h.bucket_range(3), (3.5, 4.0));
    }

    #[test]
    fn top_edge_rounding_is_clamped() {
        // A value just below `hi` whose division rounds to the bucket count
        // must land in the last bucket, not panic.
        let mut h = Histogram::new(0.0, 0.3, 3);
        h.record(0.3 - 1e-17);
        assert_eq!(h.buckets().iter().sum::<u64>() + h.overflow(), 1);
    }

    #[test]
    fn render_contains_mean() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(1.0);
        h.record(9.0);
        let s = h.render(10);
        assert!(s.contains("mean = 5.000"), "{s}");
    }

    #[test]
    fn percentile_interpolates() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let p50 = h.percentile(0.5).unwrap();
        assert!((p50 - 50.0).abs() < 1.5, "{p50}");
        let p99 = h.percentile(0.99).unwrap();
        assert!((p99 - 99.0).abs() < 1.5, "{p99}");
        assert_eq!(h.percentile(0.0).unwrap(), 0.0);
        assert_eq!(h.percentile(1.0).unwrap(), 100.0);
    }

    #[test]
    fn percentile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn percentile_overflow_maps_to_top() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(100.0);
        h.record(200.0);
        assert_eq!(h.percentile(0.9), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn percentile_out_of_range_panics() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.5);
        let _ = h.percentile(1.5);
    }

    #[test]
    #[should_panic(expected = "histogram range")]
    fn empty_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
