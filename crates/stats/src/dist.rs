//! Distribution checks for lottery fairness (Section 2).
//!
//! The number of lotteries a client wins out of `n` identical draws has a
//! binomial distribution with `E = np` and `Var = np(1-p)`; the number of
//! draws until its first win is geometric with `E = 1/p` and
//! `Var = (1-p)/p²`. The property-test suites assert the simulator's
//! empirical moments against these closed forms, and a chi-square statistic
//! backs the RNG uniformity checks.

/// Expected wins for a client with win probability `p` over `n` lotteries.
pub fn binomial_mean(n: u64, p: f64) -> f64 {
    n as f64 * p
}

/// Variance of the win count: `np(1-p)`.
pub fn binomial_variance(n: u64, p: f64) -> f64 {
    n as f64 * p * (1.0 - p)
}

/// Coefficient of variation of the observed win *proportion*:
/// `sqrt((1-p) / (np))`, as given in Section 2.
pub fn win_proportion_cv(n: u64, p: f64) -> f64 {
    ((1.0 - p) / (n as f64 * p)).sqrt()
}

/// Expected number of lotteries before a client's first win: `1/p`.
pub fn geometric_mean(p: f64) -> f64 {
    1.0 / p
}

/// Variance of the first-win count: `(1-p)/p²`.
pub fn geometric_variance(p: f64) -> f64 {
    (1.0 - p) / (p * p)
}

/// Pearson chi-square statistic for observed counts against expected
/// counts.
///
/// # Panics
///
/// Panics when the slices differ in length or an expected count is
/// non-positive — both are harness construction errors.
pub fn chi_square(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "bucket count mismatch");
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected counts must be positive");
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Conservative 99.9th-percentile critical values of the chi-square
/// distribution, indexed by degrees of freedom (1..=30).
///
/// Statistical tests in this repository compare against the 0.999 quantile
/// so seeded runs essentially never flake while real bias is still caught.
const CHI2_P999: [f64; 30] = [
    10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.124, 27.877, 29.588, 31.264, 32.909,
    34.528, 36.123, 37.697, 39.252, 40.790, 42.312, 43.820, 45.315, 46.797, 48.268, 49.728, 51.179,
    52.620, 54.052, 55.476, 56.892, 58.301, 59.703,
];

/// Whether a chi-square statistic is consistent with the null hypothesis at
/// the 0.999 level for the given degrees of freedom.
///
/// Degrees of freedom beyond 30 use the Wilson–Hilferty normal
/// approximation.
pub fn chi_square_ok(statistic: f64, dof: usize) -> bool {
    assert!(dof >= 1, "chi-square needs at least one degree of freedom");
    let critical = if dof <= 30 {
        CHI2_P999[dof - 1]
    } else {
        // Wilson–Hilferty: chi2_q(d) ≈ d (1 - 2/(9d) + z sqrt(2/(9d)))^3,
        // z_0.999 ≈ 3.0902.
        let d = dof as f64;
        let z = 3.0902;
        let t = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
        d * t * t * t
    };
    statistic <= critical
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_moments() {
        assert_eq!(binomial_mean(100, 0.25), 25.0);
        assert_eq!(binomial_variance(100, 0.25), 18.75);
    }

    #[test]
    fn cv_matches_paper_formula() {
        // cv = sqrt((1-p)/(np)); for p = 0.5, n = 100: sqrt(0.01) = 0.1.
        assert!((win_proportion_cv(100, 0.5) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn geometric_moments() {
        assert_eq!(geometric_mean(0.25), 4.0);
        assert_eq!(geometric_variance(0.5), 2.0);
    }

    #[test]
    fn chi_square_zero_for_perfect_fit() {
        let obs = [10u64, 20, 30];
        let exp = [10.0, 20.0, 30.0];
        assert_eq!(chi_square(&obs, &exp), 0.0);
    }

    #[test]
    fn chi_square_known_value() {
        // Classic die example: observed [5,8,9,8,10,20], expected 10 each:
        // chi2 = 25/10 + 4/10 + 1/10 + 4/10 + 0 + 100/10 = 13.4.
        let obs = [5u64, 8, 9, 8, 10, 20];
        let exp = [10.0; 6];
        assert!((chi_square(&obs, &exp) - 13.4).abs() < 1e-12);
    }

    #[test]
    fn chi_square_ok_accepts_small_statistics() {
        assert!(chi_square_ok(5.0, 9));
        assert!(!chi_square_ok(100.0, 9));
    }

    #[test]
    fn wilson_hilferty_is_monotone_and_sane() {
        // For 40 dof the 0.999 critical value is about 73.4.
        assert!(chi_square_ok(70.0, 40));
        assert!(!chi_square_ok(80.0, 40));
    }

    #[test]
    #[should_panic(expected = "bucket count mismatch")]
    fn mismatched_lengths_panic() {
        let _ = chi_square(&[1], &[1.0, 2.0]);
    }
}
