//! Online summary statistics.
//!
//! Welford's algorithm keeps numerically stable running mean and variance
//! without storing samples — the experiment drivers feed millions of
//! per-quantum observations through these accumulators.

/// Streaming mean / variance / extrema accumulator.
///
/// # Examples
///
/// ```
/// use lottery_stats::summary::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn of(samples: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in samples {
            s.record(x);
        }
        s
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); zero for fewer than one
    /// observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); zero for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation (`stddev / mean`); zero when the mean is.
    ///
    /// Section 2 of the paper predicts `cv = sqrt((1 - p) / (n p))` for a
    /// client's observed win proportion.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn known_variance() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.population_variance(), 4.0);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::of(&all);
        let mut left = Summary::of(&all[..37]);
        let right = Summary::of(&all[37..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::of(&[1.0, 2.0]);
        a.merge(&Summary::new());
        assert_eq!(a.count(), 2);
        let mut b = Summary::new();
        b.merge(&Summary::of(&[1.0, 2.0]));
        assert_eq!(b.count(), 2);
        assert_eq!(b.mean(), 1.5);
    }

    #[test]
    fn cv_matches_direct_computation() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((s.cv() - s.stddev() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_roundtrips() {
        let s = Summary::of(&[1.5, 2.5, 6.0]);
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }
}
