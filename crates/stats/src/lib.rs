//! # lottery-stats
//!
//! Measurement substrate for the lottery-scheduling reproduction: streaming
//! summary statistics, histograms, windowed progress series, the
//! binomial/geometric expectations of Section 2 of the paper, and
//! plain-text table rendering for the experiment harness.

pub mod dist;
pub mod histogram;
pub mod series;
pub mod summary;
pub mod table;

pub use histogram::Histogram;
pub use series::ProgressSeries;
pub use summary::Summary;
