//! Windowed time series.
//!
//! The paper's evaluation plots cumulative progress (Figures 6, 8, 9) and
//! windowed rates (Figure 5: average iterations per second over a series of
//! 8-second windows). [`ProgressSeries`] records monotonically increasing
//! progress counters against simulation time and derives both views.

/// A `(time, value)` progress recording for one task.
///
/// Times are arbitrary `u64` units (the simulator uses microseconds);
/// values are cumulative counters (iterations, frames, queries).
#[derive(Debug, Clone, Default)]
pub struct ProgressSeries {
    points: Vec<(u64, f64)>,
}

impl ProgressSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `time` moves backwards — the simulator's clock is
    /// monotone, so a regression is a caller bug.
    pub fn record(&mut self, time: u64, value: f64) {
        if let Some(&(t, _)) = self.points.last() {
            assert!(time >= t, "time moved backwards: {time} < {t}");
        }
        self.points.push((time, value));
    }

    /// Raw points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cumulative value at `time`: the last observation at or before it
    /// (zero before the first observation).
    pub fn value_at(&self, time: u64) -> f64 {
        match self.points.binary_search_by_key(&time, |&(t, _)| t) {
            Ok(mut i) => {
                // Ties: take the last observation at this timestamp.
                while i + 1 < self.points.len() && self.points[i + 1].0 == time {
                    i += 1;
                }
                self.points[i].1
            }
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Average rate (value per time unit) in each `[k*w, (k+1)*w)` window
    /// up to `end`, as Figure 5 reports.
    pub fn window_rates(&self, window: u64, end: u64) -> Vec<f64> {
        assert!(window > 0, "window must be positive");
        let mut rates = Vec::new();
        let mut start = 0u64;
        while start + window <= end {
            let delta = self.value_at(start + window) - self.value_at(start);
            rates.push(delta / window as f64);
            start += window;
        }
        rates
    }

    /// The cumulative curve sampled at multiples of `step` up to `end`
    /// inclusive — the series the paper's cumulative plots draw.
    pub fn sampled(&self, step: u64, end: u64) -> Vec<(u64, f64)> {
        assert!(step > 0, "step must be positive");
        let mut out = Vec::new();
        let mut t = 0u64;
        loop {
            out.push((t, self.value_at(t)));
            if t >= end {
                break;
            }
            t = (t + step).min(end);
        }
        out
    }

    /// Total value accrued over the whole series.
    pub fn final_value(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_series() -> ProgressSeries {
        // Value grows 2 per time unit.
        let mut s = ProgressSeries::new();
        for t in 0..=100u64 {
            s.record(t, (t * 2) as f64);
        }
        s
    }

    #[test]
    fn value_at_interpolates_stepwise() {
        let mut s = ProgressSeries::new();
        s.record(10, 5.0);
        s.record(20, 9.0);
        assert_eq!(s.value_at(0), 0.0);
        assert_eq!(s.value_at(10), 5.0);
        assert_eq!(s.value_at(15), 5.0);
        assert_eq!(s.value_at(20), 9.0);
        assert_eq!(s.value_at(1000), 9.0);
    }

    #[test]
    fn duplicate_timestamps_take_last() {
        let mut s = ProgressSeries::new();
        s.record(5, 1.0);
        s.record(5, 2.0);
        s.record(5, 3.0);
        assert_eq!(s.value_at(5), 3.0);
    }

    #[test]
    fn window_rates_constant_for_linear_growth() {
        let s = linear_series();
        let rates = s.window_rates(10, 100);
        assert_eq!(rates.len(), 10);
        for r in rates {
            assert!((r - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn window_rates_ignores_partial_tail() {
        let s = linear_series();
        assert_eq!(s.window_rates(30, 100).len(), 3);
    }

    #[test]
    fn sampled_endpoints() {
        let s = linear_series();
        let pts = s.sampled(25, 100);
        assert_eq!(pts.first(), Some(&(0, 0.0)));
        assert_eq!(pts.last(), Some(&(100, 200.0)));
        assert_eq!(pts.len(), 5);
    }

    #[test]
    fn sampled_clamps_to_end() {
        let s = linear_series();
        let pts = s.sampled(40, 100);
        assert_eq!(
            pts.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![0, 40, 80, 100]
        );
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn time_regression_panics() {
        let mut s = ProgressSeries::new();
        s.record(10, 1.0);
        s.record(9, 2.0);
    }

    #[test]
    fn final_value() {
        let s = linear_series();
        assert_eq!(s.final_value(), 200.0);
        assert_eq!(ProgressSeries::new().final_value(), 0.0);
    }
}
