//! Plain-text table rendering for the experiment harness.
//!
//! Every figure/table regenerator prints aligned text so
//! `cargo run -p lottery-experiments` output can be diffed against
//! EXPERIMENTS.md. No external dependency is warranted for this.

/// A right-aligned plain-text table builder.
///
/// # Examples
///
/// ```
/// use lottery_stats::table::Table;
///
/// let mut t = Table::new(&["allocated", "observed"]);
/// t.row(&["2:1".to_string(), "2.01:1".to_string()]);
/// let s = t.render();
/// assert!(s.contains("allocated"));
/// assert!(s.contains("2.01:1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a row of displayable values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio like the paper's "2.01 : 1" notation, normalized to the
/// last element.
pub fn ratio(values: &[f64]) -> String {
    let last = values.last().copied().unwrap_or(1.0);
    let denom = if last == 0.0 { 1.0 } else { last };
    values
        .iter()
        .map(|v| format!("{:.2}", v / denom))
        .collect::<Vec<_>>()
        .join(" : ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["123".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn row_display_formats() {
        let mut t = Table::new(&["x"]);
        t.row_display(&[1.25]);
        assert!(t.render().contains("1.25"));
    }

    #[test]
    fn ratio_normalizes_to_last() {
        assert_eq!(ratio(&[8.0, 4.0, 2.0]), "4.00 : 2.00 : 1.00");
        assert_eq!(ratio(&[3.0]), "1.00");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(&[2.0, 0.0]), "2.00 : 0.00");
    }
}
