#!/usr/bin/env bash
# Tier-1 verification: build, test, compile benches, lint, format,
# and an end-to-end smoke of the observability pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo bench --no-run --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# Observability smoke: the obs experiment must emit parseable JSONL
# flight records and a Chrome trace (consumed here and by tests/).
cargo run -q --release -p lottery-experiments --bin experiments -- obs > /dev/null
test -s target/obs/flight.jsonl || { echo "verify: flight.jsonl missing or empty" >&2; exit 1; }
head -1 target/obs/flight.jsonl | grep -q '"kind"' \
  || { echo "verify: flight.jsonl lacks structured events" >&2; exit 1; }
test -s target/obs/trace.json || { echo "verify: trace.json missing or empty" >&2; exit 1; }

# Distributed-lottery smoke: per-CPU shards on a 4-CPU machine must hold
# a Figure 2 style 2:1 ticket ratio machine-wide (within 5%).
cargo run -q --release -p lottery-experiments --bin experiments -- smp-dist \
  | grep -q "within 5%: OK" \
  || { echo "verify: distributed lottery missed the 2:1 machine-wide ratio" >&2; exit 1; }

echo "verify: OK"
