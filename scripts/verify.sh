#!/usr/bin/env bash
# Tier-1 verification: build, test, compile benches, lint, format,
# and an end-to-end smoke of the observability pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo bench --no-run --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# Observability smoke: the obs experiment must emit parseable JSONL
# flight records and a Chrome trace (consumed here and by tests/).
cargo run -q --release -p lottery-experiments --bin experiments -- obs > /dev/null
test -s target/obs/flight.jsonl || { echo "verify: flight.jsonl missing or empty" >&2; exit 1; }
head -1 target/obs/flight.jsonl | grep -q '"kind"' \
  || { echo "verify: flight.jsonl lacks structured events" >&2; exit 1; }
test -s target/obs/trace.json || { echo "verify: trace.json missing or empty" >&2; exit 1; }

# Distributed-lottery smoke: per-CPU shards on a 4-CPU machine must hold
# a Figure 2 style 2:1 ticket ratio machine-wide (within 5%), and the
# I/O-heavy variant must hold it under compensated rebalancing while the
# raw-weight ablation demonstrably drifts.
smp_dist_out=$(cargo run -q --release -p lottery-experiments --bin experiments -- smp-dist)
echo "$smp_dist_out" | grep -q "within 5%: OK" \
  || { echo "verify: distributed lottery missed the 2:1 machine-wide ratio" >&2; exit 1; }
echo "$smp_dist_out" | grep -q "io-heavy 2:1 held within 5% under compensated rebalancing: OK" \
  || { echo "verify: compensated rebalancing missed the io-heavy 2:1 ratio" >&2; exit 1; }
echo "$smp_dist_out" | grep -q "raw-weight rebalancing drifts without compensated totals: CONFIRMED" \
  || { echo "verify: raw-weight rebalancing failed to show the drift" >&2; exit 1; }

# Broker smoke: one grant per tenant funding cpu/disk/mem/net currencies
# must hold the 2:1 tenant ratio on every resource at once, and the raw
# face-amount ablation must show intra-tenant inflation leaking out.
broker_out=$(cargo run -q --release -p lottery-experiments --bin experiments -- broker)
echo "$broker_out" | grep -q "broker 2:1 isolation held within 5% on cpu, disk, mem, net: OK" \
  || { echo "verify: broker missed the 2:1 ratio on some resource" >&2; exit 1; }
echo "$broker_out" | grep -q "raw funding drifts under intra-tenant inflation: CONFIRMED" \
  || { echo "verify: raw funding ablation failed to show the leak" >&2; exit 1; }

# Cluster smoke: one cluster-level grant per tenant must hold 2:1 within
# 5% across 4 nodes after a demand skew, a killed node's grants must be
# reclaimed via inverse lotteries within the recovery bound, and the
# frozen-reconciliation ablation must demonstrably drift. The ctl verb
# must report the canned market machine-readably.
cluster_out=$(cargo run -q --release -p lottery-experiments --bin experiments -- cluster)
echo "$cluster_out" | grep -q "cluster 2:1 isolation held within 5% across 4 nodes: OK" \
  || { echo "verify: cluster market missed the 2:1 cluster-wide ratio" >&2; exit 1; }
echo "$cluster_out" | grep -qE "node-loss recovery within [0-9]+ rounds \(bound [0-9]+\): CONFIRMED" \
  || { echo "verify: node-loss recovery was not confirmed within the bound" >&2; exit 1; }
echo "$cluster_out" | grep -q "static-split ablation drifts without reconciliation: CONFIRMED" \
  || { echo "verify: static-split ablation failed to show the drift" >&2; exit 1; }
ctl_cluster_out=$(printf '%s\n' "cluster --json" \
  | cargo run -q --release -p lottery-ctl --bin lotteryctl)
echo "$ctl_cluster_out" | grep -q '"conserved":true' \
  || { echo "verify: ctl cluster --json did not report grant conservation" >&2; exit 1; }
echo "$ctl_cluster_out" | grep -q '"policy":"demand-following"' \
  || { echo "verify: ctl cluster --json lacks the budget policy" >&2; exit 1; }

# Alias-sampler smoke: winner streams must stay bit-identical across
# list/tree/alias under compensation churn, and the alias policy must
# hold a 2:1 ticket ratio; the scale bench itself is compiled by the
# `cargo bench --no-run --workspace` above (alias_scale target).
alias_out=$(cargo run -q --release -p lottery-experiments --bin experiments -- alias)
echo "$alias_out" | grep -q "winner streams bit-identical across list/tree/alias (400 draws, compensation churn): OK" \
  || { echo "verify: alias sampler diverged from the list/tree winner stream" >&2; exit 1; }
echo "$alias_out" | grep -q "alias 2:1 isolation held within 5%: OK" \
  || { echo "verify: alias policy missed the 2:1 ratio" >&2; exit 1; }

# ctl structure smoke: the structure verb must switch the winner-search
# structure and report rebuild stats machine-readably under --json.
ctl_structure_out=$(printf '%s\n' \
  "fundx 300 base a" \
  "fundx 100 base b" \
  "structure alias --json" \
  | cargo run -q --release -p lottery-ctl --bin lotteryctl)
echo "$ctl_structure_out" | grep -q '"structure":"alias"' \
  || { echo "verify: ctl structure --json lacks the structure name" >&2; exit 1; }
echo "$ctl_structure_out" | grep -q '"rebuild_ns":' \
  || { echo "verify: ctl structure --json lacks rebuild_ns" >&2; exit 1; }

# Event-driven core smoke: an all-sleeping kernel must cross its idle
# window decision-free, repeat seeded runs must produce bit-identical
# probe streams, and the shared loop must interleave the kernel, disk,
# switch, and cluster-market event sources on one clock.
events_out=$(cargo run -q --release -p lottery-experiments --bin experiments -- events)
echo "$events_out" | grep -q "OK 400 ms idle gap crossed decision-free" \
  || { echo "verify: idle gap cost scheduling decisions" >&2; exit 1; }
echo "$events_out" | grep -q "OK event-driven stream reproducible bit-for-bit" \
  || { echo "verify: repeat event-driven runs diverged" >&2; exit 1; }
echo "$events_out" | grep -q "OK four event sources interleaved on one clock" \
  || { echo "verify: shared event loop failed to compose the sources" >&2; exit 1; }

# Real-thread backend smoke: four OS worker threads must replay the
# simulator bit-for-bit at one worker, hold a 3:1 funding ratio
# machine-wide at four, and conserve ledger value under work stealing.
par_out=$(cargo run -q --release -p lottery-experiments --bin experiments -- par)
echo "$par_out" | grep -q "OK 1-worker winner stream bit-identical to the simulated SmpKernel tree" \
  || { echo "verify: 1-worker ParKernel diverged from the simulator" >&2; exit 1; }
echo "$par_out" | grep -q "OK 4 real workers hold the 3:1 funding ratio machine-wide" \
  || { echo "verify: real-thread workers missed the 3:1 ratio" >&2; exit 1; }
echo "$par_out" | grep -q "OK work stealing conserved currency value" \
  || { echo "verify: work stealing leaked or destroyed ledger value" >&2; exit 1; }

# ctl par smoke: the par verb must run the canned real-thread scenario
# and report per-worker stats machine-readably under --json.
ctl_par_out=$(printf '%s\n' "par 4 --json" \
  | cargo run -q --release -p lottery-ctl --bin lotteryctl)
echo "$ctl_par_out" | grep -q '"workers":4' \
  || { echo "verify: ctl par --json lacks the worker count" >&2; exit 1; }
echo "$ctl_par_out" | grep -q '"ratio":' \
  || { echo "verify: ctl par --json lacks the dispatch ratio" >&2; exit 1; }

# ctl events smoke: the events verb must report the pending-event queue
# machine-readably under --json.
ctl_events_out=$(printf '%s\n' "events --json" \
  | cargo run -q --release -p lottery-ctl --bin lotteryctl)
echo "$ctl_events_out" | grep -q '"depth":' \
  || { echo "verify: ctl events --json lacks the queue depth" >&2; exit 1; }
echo "$ctl_events_out" | grep -q '"horizon_us":' \
  || { echo "verify: ctl events --json lacks the next-event horizon" >&2; exit 1; }

# Record/replay smoke: every capture configuration must replay
# bit-identically, the JSONL round-trip must stay exact, and a tampered
# event must be flagged with its index. The experiment leaves a capture
# at target/replay/capture.jsonl for the ctl smoke below.
replay_out=$(cargo run -q --release -p lottery-experiments --bin experiments -- replay)
echo "$replay_out" | grep -q "OK bit-exact: structure=alias shards=4" \
  || { echo "verify: distributed alias capture failed to replay bit-exactly" >&2; exit 1; }
echo "$replay_out" | grep -q "OK bit-exact: capture.jsonl round-trip" \
  || { echo "verify: JSONL round-trip broke replay equality" >&2; exit 1; }
echo "$replay_out" | grep -q "OK divergence detected at index" \
  || { echo "verify: tampered capture was not flagged as divergent" >&2; exit 1; }

# ctl replay smoke: the replay verb must re-run the capture written
# above and report bit-exactness machine-readably under --json.
ctl_replay_out=$(printf '%s\n' "replay target/replay/capture.jsonl --json" \
  | cargo run -q --release -p lottery-ctl --bin lotteryctl)
echo "$ctl_replay_out" | grep -q '"bit_exact":true' \
  || { echo "verify: ctl replay --json did not confirm bit-exactness" >&2; exit 1; }
echo "$ctl_replay_out" | grep -q '"divergence":null' \
  || { echo "verify: ctl replay --json reported a divergence" >&2; exit 1; }

# Workload-trace smoke: lottery admission must order tenants by funding
# on the heavy-tailed trace while the FCFS baseline stays tenant-blind.
traces_out=$(cargo run -q --release -p lottery-experiments --bin experiments -- traces)
echo "$traces_out" | grep -q "OK lottery orders tenants by funding on the heavy-tailed trace" \
  || { echo "verify: lottery admission failed to order tenants by funding" >&2; exit 1; }

# ctl broker smoke: per-tenant funding and observed shares, with the
# dominant share machine-readable under --json.
ctl_broker_out=$(printf '%s\n' \
  "broker tenant gold 2000" \
  "broker tenant silver 1000" \
  "broker use gold disk 800" \
  "broker use silver disk 400" \
  "broker --json" \
  | cargo run -q --release -p lottery-ctl --bin lotteryctl)
echo "$ctl_broker_out" | grep -q '"dominant_share":' \
  || { echo "verify: ctl broker --json lacks dominant_share" >&2; exit 1; }

# ctl smoke: the shards report must expose per-shard compensation share,
# machine-readably under --json.
ctl_out=$(printf '%s\n' \
  "fundx 300 base io" \
  "fundx 300 base hog" \
  "shards 2" \
  "compensate io 5000 20000" \
  "shards --json" \
  | cargo run -q --release -p lottery-ctl --bin lotteryctl)
echo "$ctl_out" | grep -q '"compensation_share":' \
  || { echo "verify: ctl shards --json lacks compensation_share" >&2; exit 1; }
echo "$ctl_out" | grep -q "compensated 4.00x" \
  || { echo "verify: ctl compensate did not grant the 4x factor" >&2; exit 1; }

echo "verify: OK"
