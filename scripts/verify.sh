#!/usr/bin/env bash
# Tier-1 verification: build, test, compile benches, lint.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo bench --no-run --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
