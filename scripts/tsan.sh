#!/usr/bin/env bash
# Opt-in ThreadSanitizer pass over the real-thread backend (best-effort).
#
# ThreadSanitizer needs the unstable `-Z sanitizer=thread` flag and a
# std rebuilt with it, so this script requires a nightly toolchain with
# the rust-src component. CI images that carry only stable Rust (the
# default here) can't run it; in that case the script explains why and
# exits 0 so it can sit in any pipeline without gating merges. It is a
# supplement to — not a substitute for — the seeded steal/conservation
# stress tests in crates/par/tests, which run everywhere.
#
# Usage: scripts/tsan.sh [extra `cargo test` args]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v rustup >/dev/null 2>&1; then
  echo "tsan: rustup not available; skipping (best-effort check)" >&2
  exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
  echo "tsan: no nightly toolchain installed; skipping (best-effort check)" >&2
  echo "tsan: install with: rustup toolchain install nightly --component rust-src" >&2
  exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^rust-src.*(installed)'; then
  echo "tsan: nightly lacks rust-src (needed for -Zbuild-std); skipping" >&2
  echo "tsan: add with: rustup component add rust-src --toolchain nightly" >&2
  exit 0
fi

host=$(rustc -vV | sed -n 's/^host: //p')
echo "tsan: running lottery-par tests under ThreadSanitizer on ${host}"
RUSTFLAGS="-Z sanitizer=thread" \
  cargo +nightly test -p lottery-par -Z build-std --target "${host}" "$@"
