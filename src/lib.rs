//! # lottery-repro
//!
//! Umbrella crate for the reproduction of Waldspurger & Weihl, *Lottery
//! Scheduling: Flexible Proportional-Share Resource Management* (OSDI
//! '94). It re-exports the workspace crates and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start with [`core`] for the mechanism (tickets, currencies, lotteries)
//! and [`sim`] for the scheduler it plugs into; `DESIGN.md` maps every
//! paper section to a module and `EXPERIMENTS.md` records the reproduced
//! evaluation.

/// The paper's mechanism: tickets, currencies, lotteries, compensation,
/// transfers, inverse lotteries (re-export of `lottery-core`).
pub use lottery_core as core;

/// Measurement substrate (re-export of `lottery-stats`).
pub use lottery_stats as stats;

/// The discrete-event kernel and scheduling policies (re-export of
/// `lottery-sim`).
pub use lottery_sim as sim;

/// Lottery-scheduled mutexes (re-export of `lottery-sync`).
pub use lottery_sync as sync;

/// Inverse-lottery memory management (re-export of `lottery-mem`).
pub use lottery_mem as mem;

/// Lottery-scheduled communication (re-export of `lottery-net`).
pub use lottery_net as net;

/// The paper's evaluation workloads (re-export of `lottery-apps`).
pub use lottery_apps as apps;

/// Lottery-scheduled disk bandwidth (re-export of `lottery-io`).
pub use lottery_io as io;

/// The Section 4.7 command interface (re-export of `lottery-ctl`).
pub use lottery_ctl as ctl;

/// Multi-resource broker: one tenant grant funding cpu/disk/mem/net
/// sub-currencies (re-export of `lottery-broker`).
pub use lottery_broker as broker;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        let _ = crate::core::ledger::Ledger::new();
        let mut rng = crate::core::rng::ParkMiller::new(1);
        use crate::core::rng::SchedRng;
        assert!(rng.below(10) < 10);
    }
}
