//! Client-server scheduling through ticket transfers (the Figure 7
//! scenario).
//!
//! A multithreaded "database" server owns no tickets. Three clients with
//! an 8 : 3 : 1 allocation issue synchronous queries; each blocked client
//! lends its tickets to the server thread working on its behalf, so the
//! server's effort — and therefore throughput and response time — divides
//! exactly by client funding.
//!
//! Run with: `cargo run --example client_server`

use lottery_apps::dbserver::{self, DbExperiment};
use lottery_sim::prelude::*;

fn main() {
    let config = DbExperiment {
        client_tickets: vec![800, 300, 100],
        client_queries: vec![None, None, None],
        workers: 3,
        service: SimDuration::from_ms(2_000),
        think: SimDuration::from_ms(50),
        duration: SimTime::from_secs(300),
        quantum: SimDuration::from_ms(100),
        seed: 3,
    };
    println!(
        "3 clients (tickets 800/300/100) querying a {}-per-query server for {}s\n",
        config.service,
        config.duration.as_secs_f64()
    );

    let report = dbserver::run(&config);
    println!(
        "{:>8} {:>8} {:>9} {:>18} {:>12}",
        "client", "tickets", "queries", "mean response (s)", "stddev (s)"
    );
    for (i, tickets) in config.client_tickets.iter().enumerate() {
        let c = &report.clients[i];
        println!(
            "{:>8} {:>8} {:>9} {:>18.2} {:>12.2}",
            ["A", "B", "C"][i],
            tickets,
            c.queries,
            c.mean_response_secs,
            c.stddev_response_secs
        );
    }

    let q = [
        report.clients[0].queries as f64,
        report.clients[1].queries as f64,
        report.clients[2].queries as f64,
    ];
    println!(
        "\nthroughput ratio {:.2} : {:.2} : 1 (allocated 8 : 3 : 1)",
        q[0] / q[2],
        q[1] / q[2]
    );
    println!(
        "server CPU consumed: {:.1}s — all funded by client transfers",
        report.server_cpu_secs
    );
}
