//! Managing multiple resources with one ticket budget (Section 6.3).
//!
//! "Since rights for numerous resources are uniformly represented by
//! lottery tickets, clients can use quantitative comparisons to make
//! decisions involving tradeoffs between different resources." The paper
//! proposes a per-application *manager* that shifts funding between
//! resources.
//!
//! Here an application pipeline reads from a contended disk and ships the
//! data through a contended switch port; its throughput is the minimum of
//! the two stage rates. The app holds a fixed budget of 1000 tickets which
//! its manager splits between disk tickets and bandwidth tickets,
//! rebalancing each round toward the bottleneck stage.
//!
//! Run with: `cargo run --example multi_resource`

use lottery_core::prelude::*;
use lottery_io::{DiskPolicy, DiskScheduler};
use lottery_net::Switch;

const BUDGET: u64 = 1000;
const ROUNDS: usize = 12;
/// Disk services and switch slots simulated per round.
const OPS_PER_ROUND: u64 = 4000;

fn main() {
    // The contended resources: a competitor holds fixed tickets on each.
    let mut disk = DiskScheduler::new(DiskPolicy::Lottery);
    let app_disk = disk.register("app", BUDGET / 2);
    let rival_disk = disk.register("rival", 600);

    let mut switch = Switch::new();
    let app_vc = switch.open_circuit("app", BUDGET / 2);
    let rival_vc = switch.open_circuit("rival", 150);

    let mut rng = ParkMiller::new(2026);
    // The app's split starts 50/50; the manager rebalances each round.
    let mut disk_tickets = BUDGET / 2;

    println!("app budget = {BUDGET} tickets; disk rival holds 600, switch rival holds 150\n");
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "round", "disk tkts", "net tkts", "disk rate", "net rate", "pipeline"
    );

    let mut last_disk_sectors = 0u64;
    let mut last_net_cells = 0u64;
    for round in 1..=ROUNDS {
        disk.set_tickets(app_disk, disk_tickets);
        switch.set_tickets(app_vc, BUDGET - disk_tickets);

        // One round of contention on both resources.
        for i in 0..OPS_PER_ROUND {
            for (k, &c) in [app_disk, rival_disk].iter().enumerate() {
                if disk.backlog(c) < 4 {
                    disk.submit(c, (i * 64 + k as u64 * 50_000) % 500_000, 8);
                }
            }
            disk.service_next(&mut rng).unwrap();
            for &vc in &[app_vc, rival_vc] {
                if switch.backlog(vc) < 4 {
                    switch.enqueue(vc, i);
                }
            }
            switch.forward(&mut rng).unwrap();
        }

        // Measure this round's per-stage rates for the app.
        let disk_rate = disk.sectors_served(app_disk) - last_disk_sectors;
        let net_rate = (switch.forwarded(app_vc) - last_net_cells) * 8; // sectors/cell
        last_disk_sectors = disk.sectors_served(app_disk);
        last_net_cells = switch.forwarded(app_vc);
        let pipeline = disk_rate.min(net_rate);
        println!(
            "{:>5} {:>12} {:>12} {:>14} {:>14} {:>12}",
            round,
            disk_tickets,
            BUDGET - disk_tickets,
            disk_rate,
            net_rate,
            pipeline
        );

        // Manager step: move 10% of the budget toward the bottleneck,
        // with a 5% deadband so lottery noise does not cause thrashing.
        let step = BUDGET / 10;
        let imbalanced = disk_rate.abs_diff(net_rate) * 20 > disk_rate.max(net_rate);
        if imbalanced && disk_rate < net_rate {
            disk_tickets = (disk_tickets + step).min(BUDGET - step);
        } else if imbalanced && net_rate < disk_rate {
            disk_tickets = disk_tickets.saturating_sub(step).max(step);
        }
    }

    println!("\nthe manager converges on the split where both stages run at the same rate —");
    println!(
        "a decision it can make only because rights for both resources share one unit (tickets)"
    );
}
