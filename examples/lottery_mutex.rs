//! A lottery-scheduled mutex on real OS threads (Section 6.1).
//!
//! Four worker threads hammer one mutex. Two hold 300 tickets, two hold
//! 100: the heavy pair should acquire the lock about three times as often
//! under contention, demonstrating proportional-share control of a
//! synchronization resource.
//!
//! Run with: `cargo run --example lottery_mutex`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lottery_sync::LotteryMutex;

fn main() {
    let mutex = Arc::new(LotteryMutex::new(0u64, 2024));
    let stop = Arc::new(AtomicBool::new(false));
    let groups = [("heavy", 300u64, 2usize), ("light", 100, 2)];
    let counters: Vec<Arc<AtomicU64>> =
        groups.iter().map(|_| Arc::new(AtomicU64::new(0))).collect();

    let mut handles = Vec::new();
    for (g, &(_, tickets, threads)) in groups.iter().enumerate() {
        for _ in 0..threads {
            let mutex = Arc::clone(&mutex);
            let stop = Arc::clone(&stop);
            let counter = Arc::clone(&counters[g]);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    {
                        let mut guard = mutex.lock(tickets);
                        *guard += 1;
                        // Hold the lock briefly so waiters pile up and the
                        // handoff lotteries actually decide something.
                        std::thread::sleep(Duration::from_micros(300));
                    }
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
    }

    println!(
        "running 4 threads (2x300 tickets, 2x100 tickets) against one lottery mutex for 2s..."
    );
    std::thread::sleep(Duration::from_secs(2));
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }

    let heavy = counters[0].load(Ordering::Relaxed);
    let light = counters[1].load(Ordering::Relaxed);
    println!("\nacquisitions: heavy group {heavy}, light group {light}");
    println!(
        "ratio {:.2} : 1 (ticket allocation 3 : 1; the paper's 2:1 run measured 1.80 : 1)",
        heavy as f64 / light as f64
    );
    println!("critical sections completed: {}", mutex.acquisitions());
}
