//! Dynamic rate control of "video viewers" (the Figure 8 scenario).
//!
//! Three viewers decode the same stream with a 3 : 2 : 1 ticket
//! allocation. Halfway through, the user re-prioritizes to 3 : 1 : 2 by
//! simply changing ticket amounts — no cooperation from the viewers, no
//! feedback loops (contrast with the application-level control the paper
//! cites [Com94]).
//!
//! Run with: `cargo run --example video_control`

use lottery_apps::mpeg::{self, MpegExperiment, FRAME_COST};
use lottery_sim::prelude::*;

fn main() {
    let config = MpegExperiment {
        initial: vec![300, 200, 100],
        switched: vec![300, 100, 200],
        switch_at: SimTime::from_secs(150),
        duration: SimTime::from_secs(300),
        sample: SimDuration::from_secs(5),
        quantum: SimDuration::from_ms(100),
        seed: 7,
    };
    println!(
        "three viewers, frame cost {} of CPU; allocation 3:2:1, switching to 3:1:2 at {}s\n",
        FRAME_COST,
        config.switch_at.as_secs_f64()
    );

    let report = mpeg::run(&config);

    // Draw a tiny ASCII strip chart of cumulative frames.
    println!("cumulative frames (one row per 30 s; # = viewer A, * = B, o = C):");
    let max = report
        .frames
        .iter()
        .map(|s| s.final_value())
        .fold(0.0f64, f64::max);
    let mut t = 0u64;
    while t <= config.duration.as_us() {
        let vals: Vec<f64> = report.frames.iter().map(|s| s.value_at(t)).collect();
        let pos = |v: f64| ((v / max) * 60.0) as usize;
        let mut line = vec![b' '; 62];
        line[pos(vals[0]).min(61)] = b'#';
        line[pos(vals[1]).min(61)] = b'*';
        line[pos(vals[2]).min(61)] = b'o';
        println!(
            "{:>5}s |{}|",
            t / 1_000_000,
            String::from_utf8(line).unwrap()
        );
        t += 30_000_000;
    }

    println!(
        "\nframe rates before the switch: {:.2} / {:.2} / {:.2} per second",
        report.rates_before[0], report.rates_before[1], report.rates_before[2]
    );
    println!(
        "frame rates after the switch:  {:.2} / {:.2} / {:.2} per second",
        report.rates_after[0], report.rates_after[1], report.rates_after[2]
    );
    println!("\nviewers B and C swapped rates on command — pure ticket inflation, no app changes");
}
