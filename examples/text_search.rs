//! A real text-search server with proportional-share query scheduling.
//!
//! Generates a corpus of the same magnitude as the paper's Shakespeare
//! database (4.6 MB), then serves case-insensitive substring queries from
//! three clients with an 8 : 3 : 1 ticket allocation. The next query to
//! serve is chosen by lottery, so under saturation the clients' completed
//! query counts track their tickets — with the search work performed for
//! real on OS threads.
//!
//! Run with: `cargo run --release --example text_search`

use std::sync::Arc;
use std::time::Instant;

use lottery_apps::textsearch::{count_case_insensitive, generate_corpus, SearchServer};

fn main() {
    // ~1.05M words ≈ 4.6 MB, the paper's corpus size.
    let t0 = Instant::now();
    let corpus = Arc::new(generate_corpus(1_050_000, 1994));
    println!(
        "generated a {:.1} MB corpus in {:?}",
        corpus.len() as f64 / 1e6,
        t0.elapsed()
    );
    println!(
        "the string \"lottery\" occurs {} times (the paper counted 8 in Shakespeare)\n",
        count_case_insensitive(&corpus, "lottery")
    );

    let tickets = vec![800u64, 300, 100];
    let server = SearchServer::start(Arc::clone(&corpus), tickets.clone(), 1, 7);

    // Saturate the queue: 120 queries per client, pre-submitted.
    let per_client = 120;
    for _ in 0..per_client {
        for client in 0..3 {
            server.queue().submit(client, "king").unwrap();
        }
    }

    // Observe the first 120 completions: their client mix is the
    // lottery's doing.
    let mut served = [0u32; 3];
    let t1 = Instant::now();
    for _ in 0..120 {
        let r = server.results().recv().unwrap();
        served[r.client] += 1;
    }
    let elapsed = t1.elapsed();
    server.shutdown();

    println!("first 120 completions (clients hold 800 / 300 / 100 tickets):");
    for (i, &s) in served.iter().enumerate() {
        println!(
            "  client {i}: {s:3} queries ({:.0}% vs {:.0}% allocated)",
            f64::from(s) / 120.0 * 100.0,
            tickets[i] as f64 / 12.0
        );
    }
    println!(
        "\nmean service time {:.2} ms per query (real substring search over the corpus)",
        elapsed.as_secs_f64() * 1000.0 / 120.0
    );
}
