# A two-user machine economy, in Section 4.7 commands.
# Run with: cargo run -p lottery-ctl --bin lotteryctl < examples/economy.ctl

# The admin gives alice twice bob's funding.
mkcur alice
mkcur bob
mktkt alice_backing 2000 base
mktkt bob_backing 1000 base
fund alice_backing alice
fund bob_backing bob

# Alice runs a build and an editor, weighted 3:1 inside her currency.
fundx 300 alice build
fundx 100 alice editor

# Bob runs a single simulation.
fundx 100 bob sim

# Inspect the economy.
lscur
lsproc
value build
value editor
value sim

# Bob's currency is his to inflate: a second job halves the first's value
# without touching alice at all.
fundx 100 bob sim2
value sim
value build
