//! Building and valuing a Figure 3 currency graph by hand.
//!
//! Shows the raw `lottery-core` API: currencies backed by other
//! currencies' tickets, activation propagating through zero-crossings, and
//! valuation in base units.
//!
//! Run with: `cargo run --example currency_graph`

use lottery_core::prelude::*;

fn main() -> Result<()> {
    let mut ledger = Ledger::new();
    let base = ledger.base();

    // Users alice and bob split 3000 base units 1:2.
    let alice = ledger.create_currency("alice")?;
    let bob = ledger.create_currency("bob")?;
    let a_back = ledger.issue_root(base, 1000)?;
    let b_back = ledger.issue_root(base, 2000)?;
    ledger.fund_currency(a_back, alice)?;
    ledger.fund_currency(b_back, bob)?;

    // Alice runs two tasks; bob runs one.
    let task1 = ledger.create_currency("task1")?;
    let task2 = ledger.create_currency("task2")?;
    let task3 = ledger.create_currency("task3")?;
    for (t, cur, amt) in [
        (task1, alice, 100u64),
        (task2, alice, 200),
        (task3, bob, 100),
    ] {
        let ticket = ledger.issue_root(cur, amt)?;
        ledger.fund_currency(ticket, t)?;
    }

    // Threads at the leaves.
    let mut threads = Vec::new();
    for (name, cur, amt) in [
        ("thread1", task1, 100u64),
        ("thread2", task2, 200),
        ("thread3", task2, 300),
        ("thread4", task3, 100),
    ] {
        let client = ledger.create_client(name);
        let ticket = ledger.issue_root(cur, amt)?;
        ledger.fund_client(ticket, client)?;
        threads.push((name, client));
    }

    // thread1 stays blocked (task1 inactive); the rest are runnable.
    for &(_, c) in &threads[1..] {
        ledger.activate_client(c)?;
    }

    let mut v = Valuator::new(&ledger);
    println!("client values in base units (paper: 0 / 400 / 600 / 2000):");
    for &(name, c) in &threads {
        println!("  {name}: {:.0}", v.client_value(c)?);
    }

    // Now wake thread1: alice's active amount doubles, halving her other
    // task's value — all recomputed on the fly.
    ledger.activate_client(threads[0].1)?;
    let mut v = Valuator::new(&ledger);
    println!("\nafter thread1 wakes (task1 activates):");
    for &(name, c) in &threads {
        println!("  {name}: {:.0}", v.client_value(c)?);
    }
    println!("\nalice's 1000 base units now split across both tasks; bob is untouched");
    Ok(())
}
