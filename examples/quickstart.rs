//! Quickstart: proportional-share CPU scheduling in a dozen lines.
//!
//! Three compute-bound tasks hold tickets in a 3 : 2 : 1 ratio; the
//! lottery scheduler converges their CPU consumption to the same ratio.
//!
//! Run with: `cargo run --example quickstart`

use lottery_sim::prelude::*;

fn main() {
    // Build a lottery policy (seeded for reproducibility) and a kernel.
    let policy = LotteryPolicy::new(42);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);

    // Three compute-bound tasks with a 3:2:1 ticket allocation.
    let tasks = [("alpha", 300u64), ("beta", 200), ("gamma", 100)];
    let tids: Vec<ThreadId> = tasks
        .iter()
        .map(|&(name, tickets)| {
            kernel.spawn(
                name,
                Box::new(ComputeBound),
                FundingSpec::new(base, tickets),
            )
        })
        .collect();

    // Watch the shares converge, second by second.
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "t (s)", "alpha", "beta", "gamma"
    );
    for t in [1u64, 2, 5, 10, 30, 60] {
        kernel.run_until(SimTime::from_secs(t));
        let shares: Vec<f64> = tids
            .iter()
            .map(|&tid| kernel.metrics().cpu_us(tid) as f64 / kernel.now().as_us() as f64)
            .collect();
        println!(
            "{:>6} {:>9.1}% {:>9.1}% {:>9.1}%",
            t,
            shares[0] * 100.0,
            shares[1] * 100.0,
            shares[2] * 100.0
        );
    }

    let ratio = kernel.metrics().cpu_ratio(tids[0], tids[2]).unwrap();
    println!("\nalpha : gamma CPU ratio after 60 s = {ratio:.2} (allocated 3.0)");
    println!("lotteries held: {}", kernel.policy().lotteries_held());
}
