//! Currencies as resource-management abstraction barriers (the Figure 9
//! scenario).
//!
//! Users Alice and Bob get equal machine halves via two identically funded
//! currencies. Bob starts an extra greedy task inside his currency — and
//! only Bob's other tasks pay for it. Alice's tasks, and the Alice : Bob
//! aggregate split, are untouched.
//!
//! Run with: `cargo run --example load_insulation`

use lottery_apps::insulation::{self, InsulationExperiment};
use lottery_sim::prelude::*;

fn main() {
    let config = InsulationExperiment {
        currency_funding: 1000,
        initial_tasks: (100, 200),
        intruder: 300,
        intruder_at: SimTime::from_secs(150),
        duration: SimTime::from_secs(300),
        sample: SimDuration::from_secs(5),
        quantum: SimDuration::from_ms(100),
        seed: 5,
    };
    println!("currencies alice and bob each funded with 1000 base tickets");
    println!("alice runs A1=100.alice, A2=200.alice; bob runs B1=100.bob, B2=200.bob");
    println!(
        "at t={}s bob starts B3=300.bob, inflating his currency from 300 to 600\n",
        config.intruder_at.as_secs_f64()
    );

    let report = insulation::run(&config);
    let names = ["A1", "A2", "B1", "B2", "B3"];
    let half = config.intruder_at.as_secs_f64();
    let tail = config.duration.as_secs_f64() - half;
    println!(
        "{:>5} {:>16} {:>16} {:>9}",
        "task", "CPU share before", "CPU share after", "change"
    );
    for (i, name) in names.iter().enumerate() {
        let before = report.before[i] / half * 100.0;
        let after = report.after[i] / tail * 100.0;
        println!(
            "{:>5} {:>15.1}% {:>15.1}% {:>9}",
            name,
            before,
            after,
            if before > 0.0 {
                format!("{:+.0}%", (after / before - 1.0) * 100.0)
            } else {
                "new".into()
            }
        );
    }
    println!(
        "\nalice : bob aggregate after B3 = {:.2} : 1 — the inflation never escaped bob's currency",
        report.a_after() / report.b_after()
    );
}
