//! Cross-crate shape checks for every figure the paper reports.
//!
//! These assert the *qualitative* results — who wins, by roughly what
//! factor, where behaviour changes — rather than the paper's absolute
//! hardware-bound numbers. EXPERIMENTS.md records the quantitative
//! comparison.

use lottery_apps::dbserver::{self, DbExperiment};
use lottery_apps::dhrystone::{self, FairnessRun};
use lottery_apps::insulation::{self, InsulationExperiment};
use lottery_apps::montecarlo::{self, MonteCarloExperiment};
use lottery_apps::mpeg::{self, MpegExperiment};
use lottery_core::prelude::*;
use lottery_sim::prelude::*;
use lottery_sync::experiment::{self, MutexExperiment};

/// Figure 4's grid: mean observed ratio over three runs stays within the
/// paper's observed scatter for every allocation.
#[test]
fn figure4_grid_within_paper_scatter() {
    for ratio in [1.0f64, 3.0, 7.0, 10.0] {
        let mut sum = 0.0;
        for run in 0..3 {
            sum += dhrystone::run_fairness(
                &FairnessRun {
                    ratio,
                    seed: 31 * run + ratio as u32,
                    ..FairnessRun::default()
                },
                SimDuration::from_secs(8),
            )
            .observed;
        }
        let mean = sum / 3.0;
        // The paper's own 10:1 runs strayed to 13.42:1; allow ±35%.
        assert!(
            (mean / ratio - 1.0).abs() < 0.35,
            "allocated {ratio}:1 observed mean {mean}"
        );
    }
}

/// Figure 5: every 8-second window of a 2:1 run lies in a sane band and
/// the long-run ratio converges.
#[test]
fn figure5_windows_and_convergence() {
    let report = dhrystone::run_fairness(
        &FairnessRun {
            ratio: 2.0,
            duration: SimTime::from_secs(200),
            ..FairnessRun::default()
        },
        SimDuration::from_secs(8),
    );
    assert_eq!(report.windows.len(), 25);
    for &(a, b) in &report.windows {
        let r = a / b.max(1.0);
        assert!((1.0..=4.5).contains(&r), "window ratio {r}");
    }
    assert!((report.observed - 2.0).abs() < 0.2, "{}", report.observed);
}

/// Figure 6: each later Monte-Carlo task catches up to its elders.
#[test]
fn figure6_stragglers_catch_up() {
    let report = montecarlo::run(&MonteCarloExperiment {
        starts: vec![
            SimTime::ZERO,
            SimTime::from_secs(60),
            SimTime::from_secs(120),
        ],
        duration: SimTime::from_secs(500),
        ..MonteCarloExperiment::default()
    });
    let t = &report.totals;
    assert!(t[0] >= t[1] && t[1] >= t[2], "ordering: {t:?}");
    // Figure 6's curves converge but have not met by the end of the
    // window; the youngest task reaches roughly two-thirds of the oldest.
    assert!(
        (t[2] / t[0]) > 0.6,
        "youngest should close most of the gap: {t:?}"
    );
    // Against a fixed-share counterfactual (1/3 of CPU since its start),
    // the error-driven funding must have bought the youngest task more.
    let fixed_share = (500.0 - 120.0) / 3.0 * lottery_apps::montecarlo::TRIALS_PER_CPU_SEC;
    assert!(t[2] > fixed_share, "{} <= {fixed_share}", t[2]);
}

/// Figure 7: queries complete roughly 8:3:1 while all clients are active,
/// and the 100-ticket client still finishes queries (no starvation).
#[test]
fn figure7_throughput_tracks_tickets() {
    let report = dbserver::run(&DbExperiment {
        client_queries: vec![None, None, None],
        service: SimDuration::from_ms(2_000),
        duration: SimTime::from_secs(600),
        ..DbExperiment::default()
    });
    let q: Vec<f64> = report.clients.iter().map(|c| c.queries as f64).collect();
    assert!(q[2] >= 1.0, "1-share client starved");
    let r0 = q[0] / q[2];
    let r1 = q[1] / q[2];
    assert!((5.0..=12.0).contains(&r0), "A:C = {r0}");
    assert!((2.0..=4.5).contains(&r1), "B:C = {r1}");
    // Response times are ordered inversely.
    assert!(
        report.clients[0].mean_response_secs < report.clients[1].mean_response_secs
            && report.clients[1].mean_response_secs < report.clients[2].mean_response_secs
    );
}

/// Figure 8: the allocation switch at t/2 inverts viewers B and C.
#[test]
fn figure8_switch_inverts_viewers() {
    let report = mpeg::run(&MpegExperiment::default());
    assert!(report.rates_before[1] > report.rates_before[2]);
    assert!(report.rates_after[2] > report.rates_after[1]);
    // Viewer A is unaffected by the B/C swap.
    let drift = (report.rates_after[0] / report.rates_before[0] - 1.0).abs();
    assert!(drift < 0.1, "viewer A drifted {drift}");
}

/// Figure 9: inflation inside currency B never leaks into currency A.
#[test]
fn figure9_inflation_is_contained() {
    let r = insulation::run(&InsulationExperiment::default());
    let a_rate_change = (r.after[0] + r.after[1]) / (r.before[0] + r.before[1]);
    assert!(
        (a_rate_change - 1.0).abs() < 0.1,
        "currency A rate changed by {a_rate_change}"
    );
    let b_own = (r.after[2] + r.after[3]) / (r.before[2] + r.before[3]);
    assert!((b_own - 0.5).abs() < 0.1, "B1+B2 should halve, got {b_own}");
}

/// Figure 10: the mutex owner's effective funding includes all waiters.
#[test]
fn figure10_owner_inherits_waiter_funding() {
    use lottery_sync::sim_mutex::{SimLotteryMutex, WaiterFunding};
    let mut ledger = Ledger::new();
    let holder = ledger.create_client("holder");
    let waiter = ledger.create_client("waiter");
    for (c, amt) in [(holder, 100u64), (waiter, 700)] {
        let t = ledger.issue_root(ledger.base(), amt).unwrap();
        ledger.fund_client(t, c).unwrap();
        ledger.activate_client(c).unwrap();
    }
    let mut mutex = SimLotteryMutex::new(&mut ledger, "m").unwrap();
    let base = ledger.base();
    assert!(mutex
        .acquire(
            &mut ledger,
            holder,
            WaiterFunding {
                currency: base,
                amount: 100
            }
        )
        .unwrap());
    mutex
        .acquire(
            &mut ledger,
            waiter,
            WaiterFunding {
                currency: base,
                amount: 700,
            },
        )
        .unwrap();
    ledger.deactivate_client(waiter).unwrap();
    let mut v = Valuator::new(&ledger);
    // Priority inversion solved: a 100-ticket holder executes with 800.
    assert_eq!(v.client_value(holder).unwrap(), 800.0);
}

/// Figure 11: acquisition and waiting ratios track the 2:1 allocation.
#[test]
fn figure11_ratios() {
    let report = experiment::run(&MutexExperiment::default());
    let acq = report.acquisition_ratio(0, 1);
    let wait = report.waiting_ratio(1, 0);
    assert!((1.4..=2.4).contains(&acq), "acquisitions {acq}");
    assert!((1.4..=3.2).contains(&wait), "waits {wait}");
}

/// Section 5.6: the lottery policy's useful throughput stays within a few
/// percent of round-robin under identical modelled dispatch costs.
#[test]
fn section56_overhead_comparable() {
    let run = |lottery: bool| -> u64 {
        let duration = SimTime::from_secs(100);
        if lottery {
            let policy = LotteryPolicy::new(1);
            let base = policy.base_currency();
            let mut kernel = Kernel::new(policy);
            kernel.set_dispatch_cost(SimDuration::from_us(40));
            let tids: Vec<ThreadId> = (0..3)
                .map(|i| {
                    kernel.spawn(
                        format!("t{i}"),
                        Box::new(ComputeBound),
                        FundingSpec::new(base, 100),
                    )
                })
                .collect();
            kernel.run_until(duration);
            tids.iter().map(|&t| kernel.metrics().cpu_us(t)).sum()
        } else {
            let mut kernel = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
            kernel.set_dispatch_cost(SimDuration::from_us(5));
            let tids: Vec<ThreadId> = (0..3)
                .map(|i| kernel.spawn(format!("t{i}"), Box::new(ComputeBound), ()))
                .collect();
            kernel.run_until(duration);
            tids.iter().map(|&t| kernel.metrics().cpu_us(t)).sum()
        }
    };
    let lottery = run(true) as f64;
    let rr = run(false) as f64;
    let delta = (lottery / rr - 1.0).abs();
    assert!(delta < 0.03, "overhead delta {delta} exceeds a few percent");
}
