//! Schema sanity for the committed benchmark summaries.
//!
//! Every `BENCH_*.json` at the workspace root (written by the vendored
//! criterion harness) must parse and carry the fields downstream tooling
//! keys on: `name`, `samples`, and `units`, plus per-result ids and
//! timings.

use lottery_obs::json::{self, Value};
use std::fs;
use std::path::Path;

fn bench_files() -> Vec<std::path::PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<_> = fs::read_dir(root)
        .expect("read workspace root")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

#[test]
fn bench_summaries_parse_and_carry_required_fields() {
    let files = bench_files();
    assert!(
        !files.is_empty(),
        "no BENCH_*.json at the workspace root; run `cargo bench`"
    );
    for path in files {
        let text = fs::read_to_string(&path).unwrap();
        let v =
            json::parse(&text).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        for field in ["name", "samples", "units"] {
            assert!(
                v.get(field).is_some(),
                "{} lacks required field {field:?}",
                path.display()
            );
        }
        assert!(
            v.get("name").and_then(Value::as_str).is_some(),
            "{}: name must be a string",
            path.display()
        );
        assert!(
            v.get("samples").and_then(Value::as_f64).unwrap_or(0.0) >= 3.0,
            "{}: samples must be a number >= 3",
            path.display()
        );
        assert_eq!(
            v.get("units").and_then(Value::as_str),
            Some("ns_per_iter"),
            "{}: units",
            path.display()
        );
        let results = v
            .get("results")
            .and_then(Value::as_array)
            .unwrap_or_else(|| panic!("{}: results must be an array", path.display()));
        for r in results {
            assert!(
                r.get("id").and_then(Value::as_str).is_some(),
                "{}: every result needs an id",
                path.display()
            );
            assert!(
                r.get("median_ns").and_then(Value::as_f64).unwrap_or(-1.0) > 0.0,
                "{}: every result needs a positive median_ns",
                path.display()
            );
            assert!(
                r.get("samples").and_then(Value::as_f64).unwrap_or(0.0) >= 3.0,
                "{}: per-result samples",
                path.display()
            );
        }
    }
}

#[test]
fn smp_scaling_summary_covers_both_variants_at_every_width() {
    // Committed by `cargo bench --bench smp_scaling`: shared-queue and
    // distributed variants at each machine width, with the per-iteration
    // element count (scheduling decisions per simulated second) so
    // downstream tooling can compute decisions/s. The distributed rate
    // should climb with the CPU count; the shared baseline stays flat.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_smp_scaling.json");
    let text = fs::read_to_string(&path).expect("BENCH_smp_scaling.json committed");
    let v = json::parse(&text).unwrap();
    let results = v.get("results").and_then(Value::as_array).unwrap();
    for variant in ["shared", "distributed", "distributed-alias"] {
        for cpus in [1u64, 2, 4, 8] {
            let id = format!("smp-scaling/{variant}/{cpus}");
            let r = results
                .iter()
                .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
                .unwrap_or_else(|| panic!("missing result {id}"));
            assert_eq!(
                r.get("elements").and_then(Value::as_f64),
                Some((20 * cpus) as f64),
                "{id}: elements must be the decision count"
            );
        }
    }
}

#[test]
fn alias_scale_summary_covers_structures_up_to_a_million_clients() {
    // Committed by `cargo bench --bench alias_scale`: full scheduling
    // decisions (tree/alias) and bare structure draws (draw-tree /
    // draw-alias) at 10^4, 10^5, and 10^6 clients, with `elements`
    // recording the population. The alias draw must stay flat — within
    // ~2x of its 10^4 cost at a hundred times the population — while
    // the tree's descent grows with lg n.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_alias_scale.json");
    let text = fs::read_to_string(&path).expect("BENCH_alias_scale.json committed");
    let v = json::parse(&text).unwrap();
    let results = v.get("results").and_then(Value::as_array).unwrap();
    let median = |variant: &str, n: u64| -> f64 {
        let id = format!("alias-scale/{variant}/{n}");
        let r = results
            .iter()
            .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
            .unwrap_or_else(|| panic!("missing result {id}"));
        assert_eq!(
            r.get("elements").and_then(Value::as_f64),
            Some(n as f64),
            "{id}: elements must record the population"
        );
        r.get("median_ns").and_then(Value::as_f64).unwrap()
    };
    for variant in ["tree", "alias", "draw-tree", "draw-alias"] {
        for n in [10_000u64, 100_000, 1_000_000] {
            median(variant, n);
        }
    }
    let alias_growth = median("draw-alias", 1_000_000) / median("draw-alias", 10_000);
    assert!(
        alias_growth < 3.0,
        "alias draw cost must stay roughly flat from 10^4 to 10^6 clients, grew {alias_growth:.2}x"
    );
    assert!(
        median("draw-tree", 1_000_000) > 2.0 * median("draw-alias", 1_000_000),
        "at 10^6 clients the tree descent should cost well over twice an alias draw"
    );
}

#[test]
fn dispatch_lottery_flat_elements_record_population() {
    // Committed by `cargo bench --bench dispatch`: the lottery-flat group
    // runs every winner-search structure over each thread population and
    // `elements` must carry that population (one kernel quantum serves
    // one of n threads), not a constant 1.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_dispatch.json");
    let text = fs::read_to_string(&path).expect("BENCH_dispatch.json committed");
    let v = json::parse(&text).unwrap();
    let results = v.get("results").and_then(Value::as_array).unwrap();
    for structure in ["list", "tree", "alias"] {
        for n in [2u64, 8, 32, 128] {
            let id = format!("dispatch/lottery-flat/{structure}/{n}");
            let r = results
                .iter()
                .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
                .unwrap_or_else(|| panic!("missing result {id}"));
            assert_eq!(
                r.get("elements").and_then(Value::as_f64),
                Some(n as f64),
                "{id}: elements must be the thread population"
            );
        }
    }
}

#[test]
fn comp_rebalance_summary_shows_raw_drift_and_compensated_hold() {
    // Committed by `cargo bench --bench comp_rebalance`: each result's
    // `elements` field carries the measured io:hog CPU ratio × 1000
    // under the I/O-heavy four-shard mix (2:1 ticket edge → 2000 when
    // entitlement is delivered). Compensated-weight rebalancing must
    // hold the ratio within the experiment's 5% bound; the raw-weight
    // ablation must demonstrably drift outside it.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_comp_rebalance.json");
    let text = fs::read_to_string(&path).expect("BENCH_comp_rebalance.json committed");
    let v = json::parse(&text).unwrap();
    let results = v.get("results").and_then(Value::as_array).unwrap();
    let elements = |variant: &str| -> f64 {
        let id = format!("comp-rebalance/{variant}/4");
        results
            .iter()
            .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
            .unwrap_or_else(|| panic!("missing result {id}"))
            .get("elements")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("{id}: elements must be the ratio × 1000"))
    };
    let compensated = elements("compensated");
    assert!(
        (1900.0..=2100.0).contains(&compensated),
        "compensated rebalancing must hold io:hog within 5% of 2:1, got {compensated}"
    );
    let raw = elements("raw");
    assert!(
        !(1900.0..=2100.0).contains(&raw),
        "raw-weight rebalancing should drift outside the 5% bound, got {raw}"
    );
}

#[test]
fn obs_overhead_summary_proves_disabled_path_is_free() {
    // Committed by `cargo bench --bench obs_overhead`: with the recorder
    // off, dispatch must cost the same as it did before the probe bus
    // existed. The bench carries off/nop/flight variants for list and
    // tree; off vs flight shows the price of turning recording on.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_obs_overhead.json");
    let text = fs::read_to_string(&path).expect("BENCH_obs_overhead.json committed");
    let v = json::parse(&text).unwrap();
    let results = v.get("results").and_then(Value::as_array).unwrap();
    for structure in ["list", "tree"] {
        for mode in ["off", "nop", "flight"] {
            let id = format!("obs-overhead/{structure}/{mode}");
            assert!(
                results
                    .iter()
                    .any(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str())),
                "missing result {id}"
            );
        }
    }
}

#[test]
fn broker_summary_covers_both_control_paths_at_every_population() {
    // Committed by `cargo bench --bench broker`: a full demand-refund
    // rebalance cycle and a full per-scheduler weight sweep at each
    // tenant population, with `elements` carrying the tenant count so
    // downstream tooling can compute per-tenant control-step costs.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_broker.json");
    let text = fs::read_to_string(&path).expect("BENCH_broker.json committed");
    let v = json::parse(&text).unwrap();
    let results = v.get("results").and_then(Value::as_array).unwrap();
    for variant in ["rebalance", "weights"] {
        for tenants in [4u64, 16, 64] {
            let id = format!("broker-funding/{variant}/{tenants}");
            let r = results
                .iter()
                .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
                .unwrap_or_else(|| panic!("missing result {id}"));
            assert_eq!(
                r.get("elements").and_then(Value::as_f64),
                Some(tenants as f64),
                "{id}: elements must be the tenant count"
            );
        }
    }
}

#[test]
fn cluster_summary_prices_reconciliation_at_every_width() {
    // Committed by `cargo bench --bench cluster`: the coordinator's
    // protocol-only round (`reconcile`) and the full serviced round
    // (`round`) at each cluster width, with `elements` carrying the node
    // count so downstream tooling can compute per-node reconciliation
    // cost. A serviced round can never be cheaper than the bare
    // protocol at the same width.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_cluster.json");
    let text = fs::read_to_string(&path).expect("BENCH_cluster.json committed");
    let v = json::parse(&text).unwrap();
    let results = v.get("results").and_then(Value::as_array).unwrap();
    let median = |variant: &str, nodes: u64| -> f64 {
        let id = format!("cluster/{variant}/{nodes}");
        let r = results
            .iter()
            .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
            .unwrap_or_else(|| panic!("missing result {id}"));
        assert_eq!(
            r.get("elements").and_then(Value::as_f64),
            Some(nodes as f64),
            "{id}: elements must be the node count"
        );
        r.get("median_ns").and_then(Value::as_f64).unwrap()
    };
    for nodes in [2u64, 4, 8, 16] {
        assert!(
            median("round", nodes) > median("reconcile", nodes),
            "serviced round should cost more than the bare protocol at {nodes} nodes"
        );
    }
}

#[test]
fn idle_scale_summary_shows_event_core_immune_to_idle_population() {
    // Committed by `cargo bench --bench idle_scale`: a 10 ms kernel
    // window (1 ms quantum) over populations of 10^4..10^6 threads at
    // 1%/10%/100% runnable, with `elements` carrying the total
    // population. The event-driven core's headline acceptance bound: a
    // million clients at 1% runnable must cost no more than 5x the
    // ten-thousand-all-runnable window — sleepers sit in the
    // pending-event heap and cost nothing per decision. (The
    // quantum-stepping ablation rows are gone with the retired public
    // `TimeMode::Stepping`; the two-mode equivalence proof lives in
    // `crates/sim/src/stepping_equivalence.rs`.)
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_idle_scale.json");
    let text = fs::read_to_string(&path).expect("BENCH_idle_scale.json committed");
    let v = json::parse(&text).unwrap();
    let results = v.get("results").and_then(Value::as_array).unwrap();
    let median = |pct: u64, n: u64| -> f64 {
        let id = format!("idle-scale/{pct}pct/{n}");
        let r = results
            .iter()
            .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
            .unwrap_or_else(|| panic!("missing result {id}"));
        assert_eq!(
            r.get("elements").and_then(Value::as_f64),
            Some(n as f64),
            "{id}: elements must record the population"
        );
        r.get("median_ns").and_then(Value::as_f64).unwrap()
    };
    for pct in [1u64, 10, 100] {
        for n in [10_000u64, 100_000, 1_000_000] {
            median(pct, n);
        }
    }
    let ratio = median(1, 1_000_000) / median(100, 10_000);
    assert!(
        ratio <= 5.0,
        "event core: 10^6 clients at 1% runnable must stay within 5x of \
         10^4 all-runnable, got {ratio:.2}x"
    );
}

#[test]
fn par_scaling_summary_shows_real_thread_speedup() {
    // Committed by `cargo bench --bench par_scaling`: a 1 s virtual
    // window over 64 compute-bound threads on the real-thread ParKernel
    // at 1/2/4/8 workers, paced at 500 µs of wall sleep per dispatch.
    // `elements` carries the exact decision count per iteration, so
    // elements/median_ns is decisions per wall-nanosecond. Paced workers
    // sleep concurrently, so wall time per window stays flat while
    // decisions grow with the worker count: the throughput-normalised
    // speedup from 1 to 8 workers must be at least 3x even on a
    // few-core CI host.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_par_scaling.json");
    let text = fs::read_to_string(&path).expect("BENCH_par_scaling.json committed");
    let v = json::parse(&text).unwrap();
    let results = v.get("results").and_then(Value::as_array).unwrap();
    let throughput = |workers: u64| -> f64 {
        let id = format!("par-scaling/workers/{workers}");
        let r = results
            .iter()
            .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
            .unwrap_or_else(|| panic!("missing result {id}"));
        let elements = r.get("elements").and_then(Value::as_f64).unwrap();
        assert_eq!(
            elements,
            workers as f64 * 100.0,
            "{id}: elements must be workers x window/quantum decisions"
        );
        elements / r.get("median_ns").and_then(Value::as_f64).unwrap()
    };
    for workers in [1u64, 2, 4, 8] {
        assert!(throughput(workers) > 0.0);
    }
    let speedup = throughput(8) / throughput(1);
    assert!(
        speedup >= 3.0,
        "real-thread backend must show >= 3x decision throughput from \
         1 to 8 workers, got {speedup:.2}x"
    );
}

#[test]
fn replay_summary_prices_record_and_replay_for_every_structure() {
    // Committed by `cargo bench --bench replay`: a live recorded run and
    // a full replay-and-diff of the same capture, per selection
    // structure. `elements` carries the recorded event count so the two
    // phases of one structure are comparable per event; replay must have
    // the same element count as record — it re-executes the identical
    // capture.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_replay.json");
    let text = fs::read_to_string(&path).expect("BENCH_replay.json committed");
    let v = json::parse(&text).unwrap();
    let results = v.get("results").and_then(Value::as_array).unwrap();
    for structure in ["list", "tree", "alias"] {
        let events: Vec<f64> = ["record", "replay"]
            .iter()
            .map(|phase| {
                let id = format!("replay/{phase}/{structure}");
                let r = results
                    .iter()
                    .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
                    .unwrap_or_else(|| panic!("missing result {id}"));
                let elements = r.get("elements").and_then(Value::as_f64).unwrap();
                assert!(elements > 0.0, "{id}: elements must count events");
                elements
            })
            .collect();
        assert_eq!(
            events[0], events[1],
            "{structure}: record and replay must cover the same capture"
        );
    }
}
