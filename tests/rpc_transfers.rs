//! End-to-end ticket-transfer behaviour through the kernel's RPC path.

use lottery_sim::prelude::*;

/// A server thread with negligible funding of its own serves one client
/// while a compute-bound hog competes. With ticket transfers the client's
/// funding rides along, so the server makes progress proportional to the
/// *client's* tickets — the priority-inversion cure of Section 4.6.
#[test]
fn transfers_cure_priority_inversion() {
    let policy = LotteryPolicy::new(9);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let port = kernel.create_port("svc");
    let server = kernel.spawn(
        "server",
        Box::new(RpcServer::new(port)),
        FundingSpec::new(base, 1),
    );
    let _hog = kernel.spawn("hog", Box::new(ComputeBound), FundingSpec::new(base, 400));
    let client = kernel.spawn(
        "client",
        Box::new(RpcClient::new(
            port,
            SimDuration::from_ms(10),
            SimDuration::from_ms(500),
            None,
        )),
        FundingSpec::new(base, 400),
    );
    kernel.run_until(SimTime::from_secs(120));

    // The server executes with the client's 400 tickets against the hog's
    // 400: roughly half the machine, i.e. ~60 s of service. Without
    // transfers it would be 1/801 ≈ 0.15 s.
    let server_cpu = kernel.metrics().cpu_us(server) as f64 / 1e6;
    assert!(
        server_cpu > 40.0,
        "server starved despite client transfers: {server_cpu}s"
    );
    let m = kernel.metrics().thread(client).unwrap();
    assert!(m.rpcs_completed() > 40, "completed {}", m.rpcs_completed());
}

/// The same setup with transfers effectively disabled (client holds almost
/// nothing): the server starves, demonstrating what the mechanism buys.
#[test]
fn unfunded_rpc_starves_against_a_hog() {
    let policy = LotteryPolicy::new(9);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let port = kernel.create_port("svc");
    let server = kernel.spawn(
        "server",
        Box::new(RpcServer::new(port)),
        FundingSpec::new(base, 1),
    );
    let _hog = kernel.spawn("hog", Box::new(ComputeBound), FundingSpec::new(base, 400));
    let _client = kernel.spawn(
        "client",
        Box::new(RpcClient::new(
            port,
            SimDuration::from_ms(10),
            SimDuration::from_ms(500),
            None,
        )),
        FundingSpec::new(base, 1),
    );
    kernel.run_until(SimTime::from_secs(120));
    let server_cpu = kernel.metrics().cpu_us(server) as f64 / 1e6;
    assert!(
        server_cpu < 5.0,
        "a 1-ticket client should buy almost no service, got {server_cpu}s"
    );
}

/// Transfer bookkeeping must fully unwind: after the run, the policy's
/// ledger holds exactly the per-thread funding tickets (no leaked
/// transfer tickets).
#[test]
fn transfers_leave_no_residue() {
    let policy = LotteryPolicy::new(4);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let port = kernel.create_port("svc");
    let _server = kernel.spawn(
        "server",
        Box::new(RpcServer::new(port)),
        FundingSpec::new(base, 1),
    );
    let client = kernel.spawn(
        "client",
        Box::new(RpcClient::new(
            port,
            SimDuration::from_ms(5),
            SimDuration::from_ms(50),
            Some(25),
        )),
        FundingSpec::new(base, 100),
    );
    kernel.run_until(SimTime::from_secs(60));
    assert!(kernel.thread(client).is_exited());
    // Live tickets: the server's funding ticket and the base backing of
    // nothing else — the exited client's ticket was destroyed with it.
    let tickets: Vec<_> = kernel.policy().ledger().tickets().collect();
    assert_eq!(tickets.len(), 1, "leaked tickets: {tickets:?}");
    let m = kernel.metrics().thread(client).unwrap();
    assert_eq!(m.rpcs_completed(), 25);
}

/// Multiple waiting workers: requests from distinct clients are served
/// concurrently, each worker funded by its own client.
#[test]
fn concurrent_clients_fund_separate_workers() {
    let policy = LotteryPolicy::new(8);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let port = kernel.create_port("svc");
    for i in 0..2 {
        kernel.spawn(
            format!("worker{i}"),
            Box::new(RpcServer::new(port)),
            FundingSpec::new(base, 1),
        );
    }
    let fast = kernel.spawn(
        "fast-client",
        Box::new(RpcClient::new(
            port,
            SimDuration::ZERO,
            SimDuration::from_ms(300),
            None,
        )),
        FundingSpec::new(base, 300),
    );
    let slow = kernel.spawn(
        "slow-client",
        Box::new(RpcClient::new(
            port,
            SimDuration::ZERO,
            SimDuration::from_ms(300),
            None,
        )),
        FundingSpec::new(base, 100),
    );
    kernel.run_until(SimTime::from_secs(120));
    let f = kernel.metrics().thread(fast).unwrap().rpcs_completed();
    let s = kernel.metrics().thread(slow).unwrap().rpcs_completed();
    assert!(s > 0, "slow client starved");
    let ratio = f as f64 / s as f64;
    assert!((2.0..=4.5).contains(&ratio), "throughput ratio {ratio}");
}
