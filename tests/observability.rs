//! End-to-end observability pipeline checks.
//!
//! A Figure-9-style run (two sibling currencies, uneven intra-currency
//! splits) with the full consumer set attached to the kernel's probe bus:
//! the fairness-drift monitor must reproduce the kernel's own `Metrics`
//! accounting, and the flight recorder's exports must be well-formed
//! JSONL and Chrome `trace_event` JSON.

use lottery_obs::json;
use lottery_sim::prelude::*;

struct Run {
    kernel: Kernel<LotteryPolicy>,
    flight: Shared<FlightRecorder>,
    monitor: Shared<FairnessMonitor>,
    stats: Shared<Aggregator>,
    threads: Vec<ThreadId>,
}

/// Two currencies worth 100 base each; A1:A2 and B1:B2 split 1:2.
fn figure9_run(seed: u32, duration: SimTime) -> Run {
    let mut policy = LotteryPolicy::new(seed);
    let base = policy.base_currency();
    let a = policy.create_subcurrency("A", base, 100).unwrap();
    let b = policy.create_subcurrency("B", base, 100).unwrap();
    let mut kernel = Kernel::new(policy);

    let flight = Shared::new(FlightRecorder::new(1 << 16));
    let monitor = Shared::new(FairnessMonitor::new());
    let stats = Shared::new(Aggregator::new());
    let bus = ProbeBus::enabled();
    bus.attach(flight.clone());
    bus.attach(monitor.clone());
    bus.attach(stats.clone());
    kernel.set_probe_bus(bus);

    let mut threads = Vec::new();
    for &(name, cur, amount, entitled) in &[
        ("A1", a, 100u64, 100.0 / 3.0),
        ("A2", a, 200, 200.0 / 3.0),
        ("B1", b, 100, 100.0 / 3.0),
        ("B2", b, 200, 200.0 / 3.0),
    ] {
        let tid = kernel.spawn(name, Box::new(ComputeBound), FundingSpec::new(cur, amount));
        monitor.with(|m| m.set_entitlement(tid.index(), entitled));
        threads.push(tid);
    }
    kernel.run_until(duration);
    Run {
        kernel,
        flight,
        monitor,
        stats,
        threads,
    }
}

#[test]
fn drift_monitor_matches_metrics_accounting() {
    let run = figure9_run(42, SimTime::from_secs(120));
    let report = run.monitor.with(|m| m.report());
    assert_eq!(report.rows.len(), 4);

    // The monitor's CPU shares are derived purely from quantum-end probe
    // events; `Metrics` accounts run segments in the kernel. Same truth,
    // two pipelines.
    let total: u64 = run
        .threads
        .iter()
        .map(|&t| run.kernel.metrics().cpu_us(t))
        .sum();
    assert!(total > 0);
    for (row, &tid) in report.rows.iter().zip(&run.threads) {
        let metrics_share = run.kernel.metrics().cpu_us(tid) as f64 / total as f64;
        assert!(
            (row.cpu_share - metrics_share).abs() < 1e-6,
            "thread {tid}: monitor {} vs metrics {metrics_share}",
            row.cpu_share
        );
    }

    // Figure-9 entitlements are honored within statistical tolerance; at
    // this run length a correct lottery stays inside the 3-sigma band.
    assert!(!report.any_alarm(), "{}", report.to_text());
    assert!(report.max_abs_error < 0.1, "{}", report.to_text());

    // cpu_ratio cross-check: A2/A1 entitled 2:1.
    let ratio = run
        .kernel
        .metrics()
        .cpu_ratio(run.threads[1], run.threads[0])
        .unwrap();
    assert!((ratio - 2.0).abs() < 0.5, "A2/A1 ratio {ratio}");
}

#[test]
fn flight_exports_are_well_formed() {
    let run = figure9_run(7, SimTime::from_secs(20));
    let (jsonl, chrome) = run.flight.with(|f| (f.to_jsonl(), f.to_chrome_trace()));

    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        assert!(v.get("kind").is_some(), "{line}");
        assert!(
            v.get("t_us").is_some() || v.get("time_us").is_some(),
            "{line}"
        );
    }
    assert!(
        jsonl.contains("\"dispatch\"") || jsonl.contains("\"Dispatch\""),
        "{jsonl}"
    );

    let v = json::parse(&chrome).expect("chrome trace parses");
    let events = v
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .unwrap();
    assert!(!events.is_empty());
    // Dispatch→quantum-end pairs become complete slices with durations.
    let slice = events
        .iter()
        .find(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
        .expect("at least one complete slice");
    assert!(
        slice
            .get("dur")
            .and_then(json::Value::as_f64)
            .unwrap_or(-1.0)
            >= 0.0
    );
}

#[test]
fn aggregator_sees_every_layer() {
    let run = figure9_run(3, SimTime::from_secs(10));
    run.stats.with(|s| {
        assert!(s.draws > 0, "lottery draws observed");
        assert!(s.dispatches > 0, "kernel dispatches observed");
        assert!(
            s.cache_hits + s.cache_misses > 0,
            "ledger cache lookups observed"
        );
        let text = s.prometheus_text();
        assert!(text.contains("lottery_draws_total"));
        assert!(text.contains("lottery_ledger_ops_total{op=\"issue\"}"));
    });
}

#[test]
fn legacy_trace_rides_the_bus() {
    // `sim::Trace` is a bus recorder now; `enable_trace` still works and
    // the typed ring agrees with the flight recorder's event stream.
    let policy = LotteryPolicy::new(5);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let flight = Shared::new(FlightRecorder::new(1 << 14));
    kernel.set_probe_bus(ProbeBus::with_recorder(flight.clone()));
    kernel.enable_trace(1 << 14);
    let a = kernel.spawn("a", Box::new(ComputeBound), FundingSpec::new(base, 200));
    let _b = kernel.spawn("b", Box::new(ComputeBound), FundingSpec::new(base, 100));
    kernel.run_until(SimTime::from_secs(5));

    let trace = kernel.trace().expect("trace enabled");
    assert!(!trace.is_empty());
    let dispatches_in_trace = trace
        .events()
        .filter(|(_, e)| matches!(e, TraceEvent::Dispatch(_)))
        .count();
    let dispatches_in_flight = flight.with(|f| {
        f.events()
            .filter(|e| matches!(e.kind, lottery_obs::EventKind::Dispatch { .. }))
            .count()
    });
    assert_eq!(dispatches_in_trace, dispatches_in_flight);
    assert!(!trace.for_thread(a).is_empty());
}
