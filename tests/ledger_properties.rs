//! Property-based tests of the ledger's core invariants.
//!
//! Random operation sequences over random currency graphs must preserve:
//!
//! 1. **Sum consistency** — each currency's `active_amount` /
//!    `total_amount` equal the sums over its issued tickets.
//! 2. **Value conservation** — the total funded value of active clients
//!    equals the base currency's active amount (tickets only ever
//!    *redistribute* base units, never create them).
//! 3. **Activation consistency** — a ticket is active iff its funding
//!    target is active.

use lottery_core::exact::{ExactValuator, Ratio};
use lottery_core::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    CreateCurrency,
    CreateClient,
    /// Issue a ticket in currency `c % |currencies|`, amount 1..=500,
    /// funding client `cl % |clients|`.
    FundClient {
        c: usize,
        amount: u64,
        cl: usize,
    },
    /// Issue a ticket in currency `c` funding currency `d` (cycle
    /// attempts are expected to fail cleanly).
    FundCurrency {
        c: usize,
        d: usize,
        amount: u64,
    },
    Activate {
        cl: usize,
    },
    Deactivate {
        cl: usize,
    },
    DestroyTicket {
        t: usize,
    },
    SetAmount {
        t: usize,
        amount: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::CreateCurrency),
        Just(Op::CreateClient),
        (0..8usize, 1..500u64, 0..8usize).prop_map(|(c, amount, cl)| Op::FundClient {
            c,
            amount,
            cl
        }),
        (0..8usize, 0..8usize, 1..500u64).prop_map(|(c, d, amount)| Op::FundCurrency {
            c,
            d,
            amount
        }),
        (0..8usize).prop_map(|cl| Op::Activate { cl }),
        (0..8usize).prop_map(|cl| Op::Deactivate { cl }),
        (0..32usize).prop_map(|t| Op::DestroyTicket { t }),
        (0..32usize, 1..500u64).prop_map(|(t, amount)| Op::SetAmount { t, amount }),
    ]
}

struct World {
    ledger: Ledger,
    currencies: Vec<CurrencyId>,
    clients: Vec<ClientId>,
    tickets: Vec<TicketId>,
}

impl World {
    fn new() -> Self {
        let ledger = Ledger::new();
        let base = ledger.base();
        Self {
            ledger,
            currencies: vec![base],
            clients: Vec::new(),
            tickets: Vec::new(),
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::CreateCurrency => {
                let id = self
                    .ledger
                    .create_currency(format!("c{}", self.currencies.len()))
                    .unwrap();
                self.currencies.push(id);
            }
            Op::CreateClient => {
                let id = self
                    .ledger
                    .create_client(format!("cl{}", self.clients.len()));
                self.clients.push(id);
            }
            Op::FundClient { c, amount, cl } => {
                if self.clients.is_empty() {
                    return;
                }
                let c = self.currencies[c % self.currencies.len()];
                let cl = self.clients[cl % self.clients.len()];
                let t = self.ledger.issue_root(c, amount).unwrap();
                self.ledger.fund_client(t, cl).unwrap();
                self.tickets.push(t);
            }
            Op::FundCurrency { c, d, amount } => {
                let c = self.currencies[c % self.currencies.len()];
                let d = self.currencies[d % self.currencies.len()];
                let t = self.ledger.issue_root(c, amount).unwrap();
                // Funding the base or creating a cycle must fail cleanly;
                // destroy the orphan ticket either way it goes.
                match self.ledger.fund_currency(t, d) {
                    Ok(()) => self.tickets.push(t),
                    Err(LotteryError::CurrencyCycle | LotteryError::BaseCurrencyImmutable) => {
                        self.ledger.destroy_ticket(t).unwrap();
                    }
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            Op::Activate { cl } => {
                if let Some(&cl) = self.clients.get(cl % self.clients.len().max(1)) {
                    self.ledger.activate_client(cl).unwrap();
                }
            }
            Op::Deactivate { cl } => {
                if let Some(&cl) = self.clients.get(cl % self.clients.len().max(1)) {
                    self.ledger.deactivate_client(cl).unwrap();
                }
            }
            Op::DestroyTicket { t } => {
                if self.tickets.is_empty() {
                    return;
                }
                let t = self.tickets.swap_remove(t % self.tickets.len());
                self.ledger.destroy_ticket(t).unwrap();
            }
            Op::SetAmount { t, amount } => {
                if self.tickets.is_empty() {
                    return;
                }
                let t = self.tickets[t % self.tickets.len()];
                self.ledger.set_amount(t, amount).unwrap();
            }
        }
    }

    /// Invariant 1: currency sums match their issued tickets.
    fn check_sums(&self) {
        for (cid, cur) in self.ledger.currencies() {
            let mut active = 0u64;
            let mut total = 0u64;
            for (tid, t) in self.ledger.tickets() {
                if t.currency() == cid {
                    total += t.amount();
                    if t.is_active() {
                        active += t.amount();
                    }
                    let _ = tid;
                }
            }
            assert_eq!(cur.active_amount(), active, "{} active", cur.name());
            assert_eq!(cur.total_amount(), total, "{} total", cur.name());
        }
    }

    /// Invariant 2: active client value sums to the base active amount.
    fn check_conservation(&self) {
        let mut v = Valuator::new(&self.ledger);
        let mut total = 0.0;
        for (cl, _) in self.ledger.clients() {
            total += v.client_funded_value(cl).unwrap();
        }
        let base_active = self
            .ledger
            .currency(self.ledger.base())
            .unwrap()
            .active_amount() as f64;
        assert!(
            (total - base_active).abs() < 1e-6 * base_active.max(1.0),
            "client values {total} != base active {base_active}"
        );
    }

    /// Invariant 4: the exact (rational) valuator agrees with the float
    /// valuator and conserves base units bit-for-bit.
    fn check_exact(&self) {
        let mut exact = ExactValuator::new(&self.ledger);
        let mut float = Valuator::new(&self.ledger);
        let mut total = Ratio::ZERO;
        for (cl, _) in self.ledger.clients() {
            let e = exact.client_value(cl).unwrap();
            let f = float.client_funded_value(cl).unwrap();
            assert!(
                (e.to_f64() - f).abs() <= 1e-9 * f.abs().max(1.0),
                "exact {e:?} vs float {f}"
            );
            total = total.checked_add(e).unwrap();
        }
        let base_active = self
            .ledger
            .currency(self.ledger.base())
            .unwrap()
            .active_amount();
        assert_eq!(
            total,
            Ratio::from_int(base_active),
            "exact conservation failed"
        );
    }

    /// Invariant 3: ticket activity mirrors funder activity.
    fn check_activation(&self) {
        for (_, t) in self.ledger.tickets() {
            let expected = match t.target() {
                FundingTarget::Unfunded => false,
                FundingTarget::Client(cl) => self.ledger.client(cl).unwrap().is_active(),
                FundingTarget::Currency(c) => self.ledger.currency(c).unwrap().is_active(),
            };
            assert_eq!(t.is_active(), expected, "ticket {t:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_op_sequences_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut world = World::new();
        for op in &ops {
            world.apply(op);
        }
        world.check_sums();
        world.check_conservation();
        world.check_activation();
        world.check_exact();
    }

    #[test]
    fn invariants_hold_at_every_step(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut world = World::new();
        for op in &ops {
            world.apply(op);
            world.check_sums();
            world.check_conservation();
            world.check_activation();
            world.check_exact();
        }
    }
}
