//! Cross-crate: an economy built through the Section 4.7 command
//! interface drives actual lotteries with the expected proportions.

use lottery_core::ledger::Valuator;
use lottery_core::lottery::{list::ListLottery, TicketPool};
use lottery_core::rng::ParkMiller;
use lottery_ctl::{ObjectRef, Session};

/// Builds a two-user economy via commands, then draws 20,000 lotteries
/// over the processes' ledger values.
#[test]
fn command_built_economy_draws_proportionally() {
    let mut s = Session::new();
    for line in [
        "mkcur alice",
        "mkcur bob",
        "mktkt a_back 300 base",
        "mktkt b_back 100 base",
        "fund a_back alice",
        "fund b_back bob",
        "fundx 100 alice a_job",
        "fundx 100 bob b_job",
    ] {
        s.eval(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }

    let procs: Vec<_> = ["a_job", "b_job"]
        .iter()
        .map(|n| match s.lookup(n) {
            Some(ObjectRef::Proc(c)) => (*n, c),
            other => panic!("{n} resolved to {other:?}"),
        })
        .collect();

    let mut valuator = Valuator::new(s.ledger());
    let mut pool: ListLottery<&str, f64> = ListLottery::new();
    for &(name, client) in &procs {
        pool.insert(name, valuator.client_value(client).unwrap());
    }
    let mut rng = ParkMiller::new(42);
    let mut wins = 0u32;
    let n = 20_000;
    for _ in 0..n {
        if *pool.draw(&mut rng).unwrap() == "a_job" {
            wins += 1;
        }
    }
    let share = f64::from(wins) / f64::from(n);
    assert!((share - 0.75).abs() < 0.01, "a_job share {share}");
}

/// The `dot` command renders the same economy as valid Graphviz.
#[test]
fn dot_renders_command_built_graph() {
    let mut s = Session::new();
    for line in [
        "mkcur team",
        "mktkt t 500 base",
        "fund t team",
        "fundx 100 team worker",
    ] {
        s.eval(line).unwrap();
    }
    let dot = s.eval("dot").unwrap();
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("team"));
    assert!(dot.contains("worker"));
    assert_eq!(dot.matches('{').count(), dot.matches('}').count());
}

/// Deactivation through the command interface shifts lottery weight,
/// consistent with ledger semantics.
#[test]
fn deactivate_command_redistributes_value() {
    let mut s = Session::new();
    for line in [
        "mkcur pool",
        "mktkt back 900 base",
        "fund back pool",
        "fundx 100 pool first",
        "fundx 200 pool second",
    ] {
        s.eval(line).unwrap();
    }
    assert_eq!(s.eval("value first").unwrap(), "300.0");
    assert_eq!(s.eval("value second").unwrap(), "600.0");
    s.eval("deactivate second").unwrap();
    assert_eq!(s.eval("value first").unwrap(), "900.0");
    assert_eq!(s.eval("value second").unwrap(), "0.0");
}
