//! End-to-end proportional-share guarantees across the whole stack:
//! kernel + lottery policy + currency graph.

use lottery_sim::prelude::*;

/// Runs `n` compute-bound tasks with the given base-currency ticket
/// amounts for `secs` seconds and returns their CPU shares.
fn shares(tickets: &[u64], secs: u64, seed: u32) -> Vec<f64> {
    let policy = LotteryPolicy::new(seed);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let tids: Vec<ThreadId> = tickets
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            kernel.spawn(
                format!("t{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, t),
            )
        })
        .collect();
    kernel.run_until(SimTime::from_secs(secs));
    let total = kernel.now().as_us() as f64;
    tids.iter()
        .map(|&t| kernel.metrics().cpu_us(t) as f64 / total)
        .collect()
}

#[test]
fn shares_converge_for_every_integral_ratio() {
    for ratio in 1..=10u64 {
        let s = shares(&[ratio * 100, 100], 300, ratio as u32 * 7 + 1);
        let expected = ratio as f64 / (ratio as f64 + 1.0);
        assert!(
            (s[0] - expected).abs() < 0.04,
            "ratio {ratio}: share {} vs expected {expected}",
            s[0]
        );
    }
}

#[test]
fn many_equal_clients_split_evenly() {
    let s = shares(&[50; 20], 600, 11);
    for (i, &share) in s.iter().enumerate() {
        assert!(
            (share - 0.05).abs() < 0.015,
            "client {i} got {share}, expected ~0.05"
        );
    }
}

#[test]
fn tiny_share_does_not_starve() {
    // 1 ticket against 1000: the small client still gets CPU (geometric
    // first-win distribution guarantees progress).
    let s = shares(&[1000, 1], 600, 3);
    assert!(s[1] > 0.0, "1-in-1001 client starved");
    assert!(
        (s[1] - 1.0 / 1001.0).abs() < 3.0 / 1001.0,
        "share {} far from 1/1001",
        s[1]
    );
}

#[test]
fn accuracy_improves_with_duration() {
    // Longer runs must track the allocation more tightly (binomial cv
    // shrinks as 1/sqrt(lotteries)). Average over seeds to avoid a flaky
    // single-sample comparison.
    let mean_err = |secs: u64| -> f64 {
        (0..10)
            .map(|seed| {
                let s = shares(&[300, 100], secs, 100 + seed);
                (s[0] - 0.75).abs()
            })
            .sum::<f64>()
            / 10.0
    };
    let short = mean_err(20);
    let long = mean_err(500);
    assert!(
        long < short,
        "500 s error {long} should beat 20 s error {short}"
    );
}

#[test]
fn currency_funded_tasks_match_direct_funding() {
    // A task funded 100 tickets in a currency worth 300 base must behave
    // like a task funded 300 base directly.
    let mut policy = LotteryPolicy::new(17);
    let base = policy.base_currency();
    let cur = policy.create_currency("wrap", 300).unwrap();
    let mut kernel = Kernel::new(policy);
    let wrapped = kernel.spawn(
        "wrapped",
        Box::new(ComputeBound),
        FundingSpec::new(cur, 100),
    );
    let direct = kernel.spawn(
        "direct",
        Box::new(ComputeBound),
        FundingSpec::new(base, 300),
    );
    kernel.run_until(SimTime::from_secs(200));
    let ratio = kernel.metrics().cpu_ratio(wrapped, direct).unwrap();
    assert!((ratio - 1.0).abs() < 0.1, "ratio {ratio}");
}

#[test]
fn stride_and_lottery_agree_on_long_run_shares() {
    let lottery = shares(&[300, 100], 300, 5);

    let mut kernel = Kernel::new(StridePolicy::new(SimDuration::from_ms(100)));
    let a = kernel.spawn("a", Box::new(ComputeBound), 300u64);
    let b = kernel.spawn("b", Box::new(ComputeBound), 100u64);
    kernel.run_until(SimTime::from_secs(300));
    let total = kernel.now().as_us() as f64;
    let stride = [
        kernel.metrics().cpu_us(a) as f64 / total,
        kernel.metrics().cpu_us(b) as f64 / total,
    ];
    assert!(
        (lottery[0] - stride[0]).abs() < 0.03,
        "{lottery:?} vs {stride:?}"
    );
}

#[test]
fn timesharing_cannot_express_proportions() {
    // The motivating gap: decay-usage timesharing equalizes compute-bound
    // threads regardless of base priority, so a 2:1 intent is not
    // expressible. (Priorities affect latency, not steady-state share.)
    let mut kernel = Kernel::new(TimesharePolicy::new(SimDuration::from_ms(100)));
    let hi = kernel.spawn("hi", Box::new(ComputeBound), 10u8);
    let lo = kernel.spawn("lo", Box::new(ComputeBound), 14u8);
    kernel.run_until(SimTime::from_secs(300));
    let ratio = kernel.metrics().cpu_ratio(hi, lo).unwrap();
    assert!(
        ratio < 1.5,
        "decay-usage flattened the priority gap to {ratio}; no proportional control"
    );
}

#[test]
fn dynamic_inflation_shifts_shares_immediately() {
    let policy = LotteryPolicy::new(23);
    let base = policy.base_currency();
    let mut kernel = Kernel::new(policy);
    let a = kernel.spawn("a", Box::new(ComputeBound), FundingSpec::new(base, 100));
    let b = kernel.spawn("b", Box::new(ComputeBound), FundingSpec::new(base, 100));
    kernel.run_until(SimTime::from_secs(100));
    let a_before = kernel.metrics().cpu_us(a);

    kernel.policy_mut().set_funding(a, 900).unwrap();
    kernel.run_until(SimTime::from_secs(200));
    let a_share_after = (kernel.metrics().cpu_us(a) - a_before) as f64 / 100_000_000.0;
    assert!(
        (a_share_after - 0.9).abs() < 0.05,
        "after inflation a's share was {a_share_after}"
    );
    let _ = b;
}
