//! Reproducibility: every experiment in the repository is a pure function
//! of its seed.

use lottery_apps::dbserver::{self, DbExperiment};
use lottery_apps::dhrystone::{self, FairnessRun};
use lottery_apps::insulation::{self, InsulationExperiment};
use lottery_apps::montecarlo::{self, MonteCarloExperiment};
use lottery_core::rng::{ParkMiller, SchedRng};
use lottery_sim::prelude::*;
use lottery_sync::experiment::{self, MutexExperiment};

#[test]
fn dhrystone_runs_reproduce() {
    let cfg = FairnessRun {
        duration: SimTime::from_secs(30),
        ..FairnessRun::default()
    };
    let a = dhrystone::run_fairness(&cfg, SimDuration::from_secs(8));
    let b = dhrystone::run_fairness(&cfg, SimDuration::from_secs(8));
    assert_eq!(a.observed, b.observed);
    assert_eq!(a.windows, b.windows);
}

#[test]
fn dhrystone_seeds_differ() {
    let mk = |seed| {
        dhrystone::run_fairness(
            &FairnessRun {
                seed,
                duration: SimTime::from_secs(30),
                ..FairnessRun::default()
            },
            SimDuration::from_secs(8),
        )
        .windows
    };
    assert_ne!(mk(1), mk(2), "different seeds should differ in detail");
}

#[test]
fn db_experiment_reproduces() {
    let cfg = DbExperiment {
        client_queries: vec![Some(3), None, None],
        service: SimDuration::from_ms(1000),
        duration: SimTime::from_secs(60),
        ..DbExperiment::default()
    };
    let a = dbserver::run(&cfg);
    let b = dbserver::run(&cfg);
    for (x, y) in a.clients.iter().zip(&b.clients) {
        assert_eq!(x.queries, y.queries);
        assert_eq!(x.mean_response_secs, y.mean_response_secs);
    }
}

#[test]
fn montecarlo_reproduces() {
    let cfg = MonteCarloExperiment {
        starts: vec![SimTime::ZERO, SimTime::from_secs(10)],
        duration: SimTime::from_secs(40),
        ..MonteCarloExperiment::default()
    };
    let a = montecarlo::run(&cfg);
    let b = montecarlo::run(&cfg);
    assert_eq!(a.totals, b.totals);
}

#[test]
fn insulation_reproduces() {
    let cfg = InsulationExperiment {
        duration: SimTime::from_secs(60),
        intruder_at: SimTime::from_secs(30),
        ..InsulationExperiment::default()
    };
    let a = insulation::run(&cfg);
    let b = insulation::run(&cfg);
    assert_eq!(a.before, b.before);
    assert_eq!(a.after, b.after);
}

#[test]
fn mutex_experiment_reproduces() {
    let cfg = MutexExperiment {
        duration_ms: 20_000,
        ..MutexExperiment::default()
    };
    let a = experiment::run(&cfg);
    let b = experiment::run(&cfg);
    assert_eq!(a.groups[0].acquisitions, b.groups[0].acquisitions);
    assert_eq!(a.groups[1].waiting_ms.mean(), b.groups[1].waiting_ms.mean());
}

#[test]
fn park_miller_streams_are_stable() {
    // A pinned prefix of the seed-1 stream: any change to the generator
    // breaks every experiment's reproducibility, so pin it here too.
    let mut rng = ParkMiller::new(1);
    let prefix: Vec<u32> = (0..5).map(|_| rng.next_u31()).collect();
    assert_eq!(
        prefix,
        vec![
            16_806,
            282_475_248,
            1_622_650_072,
            984_943_657,
            1_144_108_929
        ]
    );
}

#[test]
fn full_kernel_trace_is_seed_deterministic() {
    let run = |seed: u32| -> Vec<u64> {
        let policy = LotteryPolicy::new(seed);
        let base = policy.base_currency();
        let mut kernel = Kernel::new(policy);
        let a = kernel.spawn("a", Box::new(ComputeBound), FundingSpec::new(base, 200));
        let b = kernel.spawn(
            "b",
            Box::new(IoBound::new(
                SimDuration::from_ms(20),
                SimDuration::from_ms(80),
            )),
            FundingSpec::new(base, 100),
        );
        kernel.run_until(SimTime::from_secs(30));
        vec![
            kernel.metrics().cpu_us(a),
            kernel.metrics().cpu_us(b),
            kernel.metrics().decisions,
            kernel.metrics().context_switches,
        ]
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}
