//! Every scheduling policy driven through identical kernel scenarios:
//! basic liveness, work conservation, and blocking behaviour hold across
//! the whole policy matrix, not just the lottery.

use lottery_sim::prelude::*;

/// Runs a mixed workload (two compute hogs, one I/O thread, one finite
/// job) for 60 s and returns (total CPU, job done, io CPU).
fn mixed_scenario<P: Policy>(mut kernel: Kernel<P>, specs: [P::Spec; 4]) -> (u64, bool, u64)
where
    P::Spec: Clone,
{
    let [s0, s1, s2, s3] = specs;
    let hogs = [
        kernel.spawn("hog0", Box::new(ComputeBound), s0),
        kernel.spawn("hog1", Box::new(ComputeBound), s1),
    ];
    let io = kernel.spawn(
        "io",
        Box::new(IoBound::new(
            SimDuration::from_ms(10),
            SimDuration::from_ms(40),
        )),
        s2,
    );
    let job = kernel.spawn(
        "job",
        Box::new(FiniteJob::new(SimDuration::from_secs(2))),
        s3,
    );
    kernel.run_until(SimTime::from_secs(60));

    let total = hogs
        .iter()
        .chain([&io, &job])
        .map(|&t| kernel.metrics().cpu_us(t))
        .sum();
    (
        total,
        kernel.thread(job).is_exited(),
        kernel.metrics().cpu_us(io),
    )
}

/// The machine never idles while compute-bound threads are runnable, and
/// the finite job completes, under every policy.
#[test]
fn all_policies_are_work_conserving() {
    let cases: Vec<(&str, (u64, bool, u64))> = vec![
        ("round-robin", {
            let kernel = Kernel::new(RoundRobinPolicy::new(SimDuration::from_ms(100)));
            mixed_scenario(kernel, [(), (), (), ()])
        }),
        ("fixed-priority", {
            let kernel = Kernel::new(FixedPriorityPolicy::new(SimDuration::from_ms(100)));
            mixed_scenario(kernel, [12, 12, 12, 12])
        }),
        ("timeshare", {
            let kernel = Kernel::new(TimesharePolicy::new(SimDuration::from_ms(100)));
            mixed_scenario(kernel, [12, 12, 12, 12])
        }),
        ("stride", {
            let kernel = Kernel::new(StridePolicy::new(SimDuration::from_ms(100)));
            mixed_scenario(kernel, [100, 100, 100, 100])
        }),
        ("fair-share", {
            let mut policy = FairSharePolicy::new(SimDuration::from_ms(100));
            let u = policy.create_user(100);
            let kernel = Kernel::new(policy);
            mixed_scenario(kernel, [u, u, u, u])
        }),
        ("lottery-list", {
            let policy = LotteryPolicy::new(7);
            let base = policy.base_currency();
            let kernel = Kernel::new(policy);
            mixed_scenario(kernel, [FundingSpec::new(base, 100); 4])
        }),
        ("lottery-tree", {
            let mut policy = LotteryPolicy::new(7);
            policy.set_structure(SelectStructure::Tree);
            let base = policy.base_currency();
            let kernel = Kernel::new(policy);
            mixed_scenario(kernel, [FundingSpec::new(base, 100); 4])
        }),
    ];
    for (name, (total, job_done, io_cpu)) in cases {
        // `run_until` completes the in-flight quantum, so the total may
        // overshoot the deadline by at most one quantum.
        assert!(
            (60_000_000..=60_100_000).contains(&total),
            "{name}: hogs must absorb all CPU (work conservation), got {total}"
        );
        assert!(job_done, "{name}: the 2 s finite job must finish in 60 s");
        assert!(
            io_cpu > 1_000_000,
            "{name}: the I/O thread must make progress, got {io_cpu}"
        );
    }
}

/// Proportional policies agree on a 3:1 split; non-proportional policies
/// demonstrably cannot express it — the paper's core claim, checked
/// across the matrix.
#[test]
fn only_proportional_policies_express_ratios() {
    let two_hogs = |ratio_holder: &str| -> f64 {
        match ratio_holder {
            "lottery" => {
                let policy = LotteryPolicy::new(3);
                let base = policy.base_currency();
                let mut kernel = Kernel::new(policy);
                let a = kernel.spawn("a", Box::new(ComputeBound), FundingSpec::new(base, 300));
                let b = kernel.spawn("b", Box::new(ComputeBound), FundingSpec::new(base, 100));
                kernel.run_until(SimTime::from_secs(300));
                kernel.metrics().cpu_ratio(a, b).unwrap()
            }
            "stride" => {
                let mut kernel = Kernel::new(StridePolicy::new(SimDuration::from_ms(100)));
                let a = kernel.spawn("a", Box::new(ComputeBound), 300u64);
                let b = kernel.spawn("b", Box::new(ComputeBound), 100u64);
                kernel.run_until(SimTime::from_secs(300));
                kernel.metrics().cpu_ratio(a, b).unwrap()
            }
            "fair-share" => {
                let mut policy = FairSharePolicy::new(SimDuration::from_ms(100));
                let ua = policy.create_user(300);
                let ub = policy.create_user(100);
                let mut kernel = Kernel::new(policy);
                let a = kernel.spawn("a", Box::new(ComputeBound), ua);
                let b = kernel.spawn("b", Box::new(ComputeBound), ub);
                kernel.run_until(SimTime::from_secs(300));
                kernel.metrics().cpu_ratio(a, b).unwrap()
            }
            "timeshare" => {
                let mut kernel = Kernel::new(TimesharePolicy::new(SimDuration::from_ms(100)));
                let a = kernel.spawn("a", Box::new(ComputeBound), 8u8);
                let b = kernel.spawn("b", Box::new(ComputeBound), 16u8);
                kernel.run_until(SimTime::from_secs(300));
                kernel.metrics().cpu_ratio(a, b).unwrap()
            }
            _ => unreachable!(),
        }
    };
    // Lottery, stride, and fair share all deliver 3:1 (fair share over
    // its decay horizon).
    for p in ["lottery", "stride", "fair-share"] {
        let r = two_hogs(p);
        assert!((r - 3.0).abs() < 0.4, "{p} delivered {r}, wanted ~3:1");
    }
    // Decay-usage timesharing flattens even an 8-level priority gap.
    let r = two_hogs("timeshare");
    assert!(r < 1.5, "timeshare cannot express ratios, got {r}");
}

/// The SMP kernel runs the lottery in tree mode too.
#[test]
fn smp_with_tree_structure() {
    let mut policy = LotteryPolicy::new(5);
    policy.set_structure(SelectStructure::Tree);
    let base = policy.base_currency();
    let mut kernel = SmpKernel::new(policy, 2);
    let tids: Vec<ThreadId> = (0..4)
        .map(|i| {
            kernel.spawn(
                format!("t{i}"),
                Box::new(ComputeBound),
                FundingSpec::new(base, 100),
            )
        })
        .collect();
    kernel.run_until(SimTime::from_secs(60)).unwrap();
    for &t in &tids {
        let share = kernel.metrics().cpu_us(t) as f64 / 60e6;
        assert!((share - 0.5).abs() < 0.06, "share {share}");
    }
    assert!((kernel.utilization() - 1.0).abs() < 1e-9);
}
