//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a miniature property-testing framework exposing the `proptest`
//! API surface its tests use: the [`proptest!`] macro, range / tuple /
//! [`strategy::Just`] / mapped / union / vec strategies, `prop_assert*`,
//! `prop_assume!`, and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim; minimization is up to the reader.
//! * **Deterministic seeding.** Cases derive from a fixed seed mixed with
//!   the test-function name, so runs are reproducible; set
//!   `PROPTEST_SEED=<u64>` to explore a different stream.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a [`TestRng`].
    ///
    /// Object safe: `prop_map` is `Self: Sized`, so `Box<dyn Strategy>`
    /// works for heterogeneous unions.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among strategies of one value type; the engine of
    /// `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if no arm has positive weight.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive-weight arm");
            Self { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut winning = rng.below(self.total);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if winning < w {
                    return arm.generate(rng);
                }
                winning -= w;
            }
            unreachable!("winning value below total weight")
        }
    }

    /// Boxes one `prop_oneof!` arm, driving inference of the common value
    /// type.
    pub fn union_arm<V, S>(weight: u32, strategy: S) -> (u32, Box<dyn Strategy<Value = V>>)
    where
        S: Strategy<Value = V> + 'static,
    {
        (weight, Box::new(strategy))
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + rng.below_u128(span)) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                    (*self.start() as u128 + rng.below_u128(span)) as $t
                }
            }
        )+};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical whole-domain strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Whole-domain strategy for primitives (see [`Arbitrary`] impls).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    macro_rules! arbitrary_primitives {
        ($($t:ty => |$rng:ident| $gen:expr;)+) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;

                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(core::marker::PhantomData)
                }
            }
        )+};
    }

    arbitrary_primitives! {
        bool => |rng| rng.next_u64() & 1 == 1;
        u8 => |rng| rng.next_u64() as u8;
        u16 => |rng| rng.next_u64() as u16;
        u32 => |rng| rng.next_u64() as u32;
        u64 => |rng| rng.next_u64();
        usize => |rng| rng.next_u64() as usize;
        i32 => |rng| rng.next_u64() as i32;
        i64 => |rng| rng.next_u64() as i64;
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length range for [`vec`]; converted from `usize` ranges.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case runner behind the [`crate::proptest!`] macro.

    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// `prop_assert*` failed; the test fails.
        Fail(String),
    }

    /// Runner configuration, set via `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
        /// Cumulative `prop_assume!` rejections tolerated before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config requiring `cases` passing cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            Self(seed)
        }

        /// The next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A draw uniform in `[0, bound)`. Modulo bias is acceptable for
        /// test-input generation.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// A draw uniform in `[0, bound)` for spans that overflow `u64`
        /// (e.g. `0..=u64::MAX`).
        pub fn below_u128(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % bound
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one `proptest!` function: generates cases until `cases`
    /// pass, panicking on the first failure with the offending inputs.
    pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
    {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x005E_ED0F_1CE5_u64);
        let mut rng = TestRng::new(base ^ fnv1a(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            let mut inputs = String::new();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case(&mut rng, &mut inputs)
            }));
            match outcome {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject(what))) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "{name}: too many prop_assume! rejections ({rejected}); last: {what}"
                        );
                    }
                }
                Ok(Err(TestCaseError::Fail(why))) => {
                    panic!("{name}: case #{passed} failed: {why}\n  inputs: {inputs}");
                }
                Err(payload) => {
                    eprintln!("{name}: case #{passed} panicked\n  inputs: {inputs}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod prelude {
    //! Everything a test file needs, glob-imported.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module path used by test files (`prop::collection`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property-test functions. Each `arg in strategy` binding is
/// generated per case; the body may use `prop_assert*` / `prop_assume!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(
                $config,
                stringify!($name),
                |__rng, __inputs| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    {
                        use ::std::fmt::Write as _;
                        $(let _ = ::std::write!(
                            __inputs,
                            concat!(stringify!($arg), " = {:?}; "),
                            &$arg
                        );)+
                    }
                    #[allow(clippy::redundant_closure_call)]
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Rejects the current case, retrying with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case (with generated-input reporting) if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Fails the current case if the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} == {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {:?} == {:?}: {}",
                    __a,
                    __b,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {:?} != {:?}: {}",
                    __a,
                    __b,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Weighted (`w => strategy`) or uniform choice among strategies of one
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::union_arm(($weight) as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0..100u64, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn oneof_covers_arms(which in prop_oneof![1 => Just(0u8), 1 => Just(1u8), 3 => Just(2u8)]) {
            prop_assert!(which <= 2);
        }

        #[test]
        fn assume_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1, "x {}", x);
        }

        #[test]
        fn maps_and_tuples_compose(p in (0..5u64, 0..5u64).prop_map(|(a, b)| a + b)) {
            prop_assert!(p <= 8);
        }
    }

    #[test]
    #[should_panic(expected = "case #0 failed")]
    fn failing_case_reports_inputs() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "impossible");
            }
        }
        inner();
    }
}
