//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal surface it uses: [`Mutex`] whose `lock` returns a
//! guard directly (no poison `Result`), and [`Condvar`] whose `wait` takes
//! the guard by `&mut`. Both delegate to `std::sync`; poisoning is
//! translated into a panic, which matches `parking_lot`'s behaviour of not
//! poisoning at all for the ways this workspace uses locks (a panicked
//! holder aborts the test/bench anyway).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar::wait` can temporarily take the inner guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// relocks before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock with the same panic-free API, for completeness.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        handle.join().unwrap();
    }
}
