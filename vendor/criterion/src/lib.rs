//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock harness exposing the `criterion` API
//! surface the benches use: groups, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Differences from real criterion, by design:
//!
//! * Sampling is simple: warm-up, iteration-count calibration, then a
//!   fixed number of timed batches; the reported statistic is the median
//!   of per-iteration times across batches. No outlier analysis or
//!   bootstrap confidence intervals.
//! * Every run writes a machine-readable summary, `BENCH_<target>.json`,
//!   at the workspace root, so successive PRs can track the performance
//!   trajectory without parsing human-oriented output.
//!
//! Environment knobs: `BENCH_SAMPLE_MS` (per-batch budget, default 8 ms),
//! `BENCH_SAMPLES` (batches per benchmark, default 11), and
//! `BENCH_WARMUP_MS` (default 20 ms).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark (recorded in the summary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: an optional function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// One measured benchmark, as recorded in the JSON summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full id, `group/function/parameter`.
    pub id: String,
    /// Median per-iteration time across sample batches, in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time across sample batches, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest batch's per-iteration time, in nanoseconds.
    pub min_ns: f64,
    /// Number of sample batches.
    pub samples: usize,
    /// Iterations per batch.
    pub iters: u64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

/// Harness settings plus the accumulated results of a run.
pub struct Criterion {
    warmup: Duration,
    sample_budget: Duration,
    samples: usize,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = |var: &str, default_ms: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default_ms)
        };
        Self {
            warmup: Duration::from_millis(ms("BENCH_WARMUP_MS", 20)),
            sample_budget: Duration::from_millis(ms("BENCH_SAMPLE_MS", 8)),
            samples: std::env::var("BENCH_SAMPLES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(11)
                .max(3),
            filter: None,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration. The only supported option is a
    /// positional substring filter; cargo's own flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--quiet" | "-q" | "--noplot" | "--exact" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size" => {
                    let _ = args.next();
                }
                _ if a.starts_with('-') => {}
                _ => self.filter = Some(a),
            }
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run_one(id, None, &mut f);
        self
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: run the body repeatedly until the budget elapses. The
        // Bencher records time-per-iter, which calibrates the batch size.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        let mut warmup_time = Duration::ZERO;
        while warmup_start.elapsed() < self.warmup {
            f(&mut bencher);
            warmup_iters += bencher.iters;
            warmup_time += bencher.elapsed;
            bencher.iters = (bencher.iters * 2).min(1 << 20);
        }
        let per_iter = warmup_time.as_secs_f64() / warmup_iters.max(1) as f64;
        let iters =
            ((self.sample_budget.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                bencher.iters = iters;
                f(&mut bencher);
                bencher.elapsed.as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min = per_iter_ns[0];
        println!(
            "{id:<55} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        self.results.push(BenchResult {
            id,
            median_ns: median,
            mean_ns: mean,
            min_ns: min,
            samples: self.samples,
            iters,
            throughput,
        });
    }

    /// Writes `BENCH_<target>.json` at the workspace root and prints a
    /// closing line. Called by `criterion_main!`; `manifest_dir` is the
    /// *bench crate*'s manifest directory, from which the workspace root
    /// is located.
    pub fn final_summary(&mut self, target: &str, manifest_dir: &str) {
        let path = summary_path(target, manifest_dir);
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"name\": {:?},", target);
        let _ = writeln!(json, "  \"bench\": {:?},", target);
        let _ = writeln!(json, "  \"unit\": \"ns_per_iter\",");
        let _ = writeln!(json, "  \"units\": \"ns_per_iter\",");
        let _ = writeln!(json, "  \"samples\": {},", self.samples);
        let _ = writeln!(json, "  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let throughput = match r.throughput {
                Some(Throughput::Elements(n)) => format!(", \"elements\": {n}"),
                Some(Throughput::Bytes(n)) => format!(", \"bytes\": {n}"),
                None => String::new(),
            };
            let _ = writeln!(
                json,
                "    {{\"id\": {:?}, \"median_ns\": {:.3}, \"mean_ns\": {:.3}, \"min_ns\": {:.3}, \"samples\": {}, \"iters\": {}{}}}{}",
                r.id, r.median_ns, r.mean_ns, r.min_ns, r.samples, r.iters, throughput, comma
            );
        }
        json.push_str("  ]\n}\n");
        match std::fs::write(&path, json) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
        }
    }
}

/// Finds the workspace root (the nearest ancestor whose `Cargo.toml`
/// declares `[workspace]`) and names the summary file there.
fn summary_path(target: &str, manifest_dir: &str) -> PathBuf {
    let mut dir = PathBuf::from(manifest_dir);
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.join(format!("BENCH_{target}.json"));
            }
        }
        if !dir.pop() {
            return PathBuf::from(manifest_dir).join(format!("BENCH_{target}.json"));
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of sample batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.max(3);
        self
    }

    /// Overrides the per-batch measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.sample_budget = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion.run_one(id, throughput, &mut f);
        self
    }

    /// Benchmarks `f` with an input value under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion.run_one(id, throughput, &mut |b| f(b, input));
        self
    }

    /// Closes the group (a no-op; results live on the `Criterion`).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the measured body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `body`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares `main` for a bench target: runs every group, then writes the
/// machine-readable summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary(env!("CARGO_CRATE_NAME"), env!("CARGO_MANIFEST_DIR"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            sample_budget: Duration::from_millis(1),
            samples: 3,
            filter: None,
            results: Vec::new(),
        };
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].median_ns > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            ..Criterion::default()
        };
        c.bench_function("spin", |b| b.iter(|| 1 + 1));
        assert!(c.results.is_empty());
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
